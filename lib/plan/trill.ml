open Fw_window

(* "Min" / "Max" / "Avg" ... as Trill method-ish names. *)
let camel agg =
  let s = String.lowercase_ascii (Fw_agg.Aggregate.to_string agg) in
  String.capitalize_ascii s

let window_combinator w =
  match Window.hop_domain w with
  | None -> Printf.sprintf ".SessionTimeoutWindow(\"_%d\")" (Window.gap w)
  | Some Window.Count ->
      if Window.is_tumbling w then
        Printf.sprintf ".CountTumbling(%d)" (Window.range w)
      else
        Printf.sprintf ".CountHopping(%d,%d)" (Window.range w)
          (Window.slide w)
  | Some Window.Time ->
      if Window.is_tumbling w then
        Printf.sprintf ".Tumbling(\"_%d\")" (Window.range w)
      else
        Printf.sprintf ".Hopping(\"_%d_%d\")" (Window.range w)
          (Window.slide w)

let group_aggregate agg ~field =
  let f = camel agg in
  Printf.sprintf ".GroupAggregateWin(w,k,%s(e.%s),(w,k,agg0) => {w,k,agg0.%s})"
    f field f

(* A window's children = windows whose (multicast-resolved) input is it. *)
let children_of plan w =
  List.filter
    (fun c ->
      match Plan.window_input plan c with
      | `Window p -> Window.equal p w
      | `Stream -> false)
    (Plan.all_windows plan)

let roots_of plan =
  List.filter
    (fun w -> Plan.window_input plan w = `Stream)
    (Plan.all_windows plan)

let is_exposed plan w =
  List.exists (Window.equal w) (Plan.exposed_windows plan)

let render plan =
  let buf = Buffer.create 256 in
  let agg = Plan.agg plan in
  (* Index windows in plan order for the sub-aggregate field names. *)
  let indexed = List.mapi (fun i w -> (w, i)) (Plan.all_windows plan) in
  let index_of w =
    List.assoc w (List.map (fun (w, i) -> (w, i)) indexed)
  in
  let field_of_input w =
    match Plan.window_input plan w with
    | `Stream -> "a"
    | `Window p -> Printf.sprintf "sagg%d" (index_of p)
  in
  let pad depth = String.make depth ' ' in
  let rec emit_window depth w =
    let mark = if is_exposed plan w then "" else " /* factor */" in
    Buffer.add_string buf
      (window_combinator w ^ group_aggregate agg ~field:(field_of_input w)
     ^ mark);
    match children_of plan w with
    | [] -> ()
    | children ->
        Buffer.add_string buf
          (Printf.sprintf "\n%s.Multicast(s => s" (pad (depth + 1)));
        List.iter
          (fun c ->
            Buffer.add_string buf
              (Printf.sprintf "\n%s.Union(s\n%s" (pad (depth + 2))
                 (pad (depth + 3)));
            emit_window (depth + 3) c;
            Buffer.add_string buf ")")
          children;
        Buffer.add_string buf ")"
  in
  Buffer.add_string buf "Source";
  (match Plan.source_filter plan with
  | Some pred ->
      Buffer.add_string buf
        (Printf.sprintf "\n.Where(e => %s)" (Predicate.to_string pred))
  | None -> ());
  (match roots_of plan with
  | [ root ] ->
      Buffer.add_string buf "\n";
      emit_window 0 root
  | roots ->
      Buffer.add_string buf "\n.Multicast(s => s";
      List.iteri
        (fun i root ->
          if i = 0 then Buffer.add_string buf "\n "
          else Buffer.add_string buf "\n .Union(s\n  ";
          emit_window 2 root;
          if i > 0 then Buffer.add_string buf ")")
        roots;
      Buffer.add_string buf ")");
  Buffer.contents buf

let pp ppf plan = Format.pp_print_string ppf (render plan)
