(** End-to-end query rewriting (Section 3.3 + Section 4).

    Bundles the optimizer pipeline: window set → min-cost WCG (best of
    Algorithms 1 and 2, Section 4.3) → operator plan.  Holistic
    aggregates, for which no sharing is sound, fall back to the naive
    plan. *)

type outcome = {
  plan : Plan.t;
  naive_plan : Plan.t;
  optimization : Fw_wcg.Algorithm1.result option;
      (** [None] when the aggregate is holistic or no window is
          coverable (naive fallback). *)
  naive_cost : int option;
      (** Baseline cost over the common period of the {e coverable}
          windows, when defined.  Sessions and non-aligned hops have no
          static cost model and are excluded from both sides of the
          comparison. *)
}

val optimize :
  ?eta:int ->
  ?factor_windows:bool ->
  ?filter:Predicate.t ->
  Fw_agg.Aggregate.t ->
  Fw_window.Window.t list ->
  outcome
(** [factor_windows] defaults to [true] (Algorithm 2 + best-of); set it
    to [false] for plain Algorithm 1.  [filter] installs a WHERE
    predicate over the source in both plans (it does not enter the cost
    model, which prices the post-filter rate). *)

val plan_of_result :
  ?filter:Predicate.t ->
  ?fallback:Fw_window.Window.t list ->
  Fw_agg.Aggregate.t ->
  Fw_wcg.Algorithm1.result ->
  Plan.t
(** Just the Section 3.3 construction on an optimizer result;
    [fallback] windows are appended as exposed stream-fed
    aggregates. *)

val improvement_percent : outcome -> float option
(** [100·(1 − C_opt/C_naive)], when both costs are defined. *)
