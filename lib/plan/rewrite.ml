module Algorithm1 = Fw_wcg.Algorithm1
module Forest = Fw_wcg.Forest
module Cost_model = Fw_wcg.Cost_model

type outcome = {
  plan : Plan.t;
  naive_plan : Plan.t;
  optimization : Algorithm1.result option;
  naive_cost : int option;
}

let plan_of_result ?filter ?fallback agg (result : Algorithm1.result) =
  Plan.of_forest ?filter ?fallback agg (Forest.of_graph result.Algorithm1.graph)

let optimize ?eta ?(factor_windows = true) ?filter agg ws =
  let ws = Fw_window.Window.dedup ws in
  let naive_plan = Plan.naive ?filter agg ws in
  match Fw_agg.Aggregate.semantics agg with
  | None -> { plan = naive_plan; naive_plan; optimization = None; naive_cost = None }
  | Some semantics -> (
      (* Coverage theory only speaks about aligned hops (time or
         count); sessions and non-aligned hops bypass the WCG as
         exposed stream-fed fallback aggregates. *)
      let coverable, fallback =
        List.partition Fw_window.Window.is_aligned ws
      in
      match coverable with
      | [] ->
          {
            plan = naive_plan;
            naive_plan;
            optimization = None;
            naive_cost = None;
          }
      | _ ->
          let result =
            if factor_windows then
              Fw_factor.Algorithm2.best_of ?eta semantics coverable
            else Algorithm1.run ?eta semantics coverable
          in
          let naive_cost =
            Cost_model.naive_total result.Algorithm1.env coverable
          in
          {
            plan = plan_of_result ?filter ~fallback agg result;
            naive_plan;
            optimization = Some result;
            naive_cost = Some naive_cost;
          })

let improvement_percent outcome =
  match (outcome.optimization, outcome.naive_cost) with
  | Some r, Some naive when naive > 0 ->
      Some
        (100.0
        *. (1.0 -. (float_of_int r.Algorithm1.total /. float_of_int naive)))
  | _ -> None
