open Fw_window
module Forest = Fw_wcg.Forest

type id = int

type op =
  | Source
  | Filter of { pred : Predicate.t; input : id }
  | Multicast of id
  | Win_agg of { window : Window.t; input : id; expose : bool }
  | Union of id list

type t = { agg : Fw_agg.Aggregate.t; nodes : op array; output : id }

let agg t = t.agg
let nodes t = t.nodes
let output t = t.output

(* Monotone plan builder: appending returns the fresh id, and inputs
   always precede their consumers. *)
module Builder = struct
  type t = { mutable rev_nodes : op list; mutable next : id }

  let create () = { rev_nodes = []; next = 0 }

  let push b op =
    let id = b.next in
    b.rev_nodes <- op :: b.rev_nodes;
    b.next <- id + 1;
    id

  let finish b ~agg ~output =
    { agg; nodes = Array.of_list (List.rev b.rev_nodes); output }
end

let push_source ?filter b =
  let source = Builder.push b Source in
  match filter with
  | None -> source
  | Some pred -> Builder.push b (Filter { pred; input = source })

let naive ?filter agg ws =
  let ws = Window.dedup ws in
  if ws = [] then invalid_arg "Plan.naive: empty window set";
  let b = Builder.create () in
  let source = push_source ?filter b in
  let input =
    match ws with
    | [ _ ] -> source
    | _ -> Builder.push b (Multicast source)
  in
  let aggs =
    List.map
      (fun window -> Builder.push b (Win_agg { window; input; expose = true }))
      ws
  in
  let output = Builder.push b (Union aggs) in
  Builder.finish b ~agg ~output

let of_forest ?filter ?(fallback = []) agg trees =
  if trees = [] && fallback = [] then
    invalid_arg "Plan.of_forest: empty forest";
  let b = Builder.create () in
  let source = push_source ?filter b in
  let root_input =
    (* fallback windows read the raw stream too, so they count as
       source consumers when deciding whether a multicast is needed *)
    match (trees, fallback) with
    | [ _ ], [] | [], [ _ ] -> source
    | _ -> Builder.push b (Multicast source)
  in
  let union_inputs = ref [] in
  let rec emit input (tree : Forest.tree) =
    let expose = match tree.kind with Fw_wcg.Graph.Query -> true | Factor -> false in
    let node =
      Builder.push b (Win_agg { window = tree.window; input; expose })
    in
    if expose then union_inputs := node :: !union_inputs;
    match tree.children with
    | [] -> ()
    | children ->
        let mcast = Builder.push b (Multicast node) in
        List.iter (emit mcast) children
  in
  List.iter (emit root_input) trees;
  (* Windows outside the coverage machinery (sessions, non-aligned
     hops): exposed, stream-fed, no sharing. *)
  List.iter
    (fun window ->
      let node =
        Builder.push b (Win_agg { window; input = root_input; expose = true })
      in
      union_inputs := node :: !union_inputs)
    fallback;
  let output = Builder.push b (Union (List.rev !union_inputs)) in
  Builder.finish b ~agg ~output

let fold_windows f acc t =
  Array.fold_left
    (fun acc op ->
      match op with
      | Win_agg { window; input; expose } -> f acc ~window ~input ~expose
      | Source | Filter _ | Multicast _ | Union _ -> acc)
    acc t.nodes

let exposed_windows t =
  List.rev
    (fold_windows
       (fun acc ~window ~input:_ ~expose ->
         if expose then window :: acc else acc)
       [] t)

let all_windows t =
  List.rev
    (fold_windows (fun acc ~window ~input:_ ~expose:_ -> window :: acc) [] t)

let rec resolve_input t id =
  match t.nodes.(id) with
  | Multicast input | Filter { input; _ } -> resolve_input t input
  | Source -> `Stream
  | Win_agg { window; _ } -> `Window window
  | Union _ -> invalid_arg "Plan.resolve_input: union feeding a window"

let source_filter t =
  Array.fold_left
    (fun acc op ->
      match op with Filter { pred; _ } -> Some pred | _ -> acc)
    None t.nodes

let window_input t w =
  let found =
    fold_windows
      (fun acc ~window ~input ~expose:_ ->
        if acc = None && Window.equal window w then Some input else acc)
      None t
  in
  match found with
  | None -> raise Not_found
  | Some input -> resolve_input t input

let pp ppf t =
  Format.fprintf ppf "@[<v>plan (%a):@," Fw_agg.Aggregate.pp t.agg;
  Array.iteri
    (fun id op ->
      match op with
      | Source -> Format.fprintf ppf "  %d: source@," id
      | Filter { pred; input } ->
          Format.fprintf ppf "  %d: filter %a <- %d@," id Predicate.pp pred
            input
      | Multicast i -> Format.fprintf ppf "  %d: multicast <- %d@," id i
      | Win_agg { window; input; expose } ->
          Format.fprintf ppf "  %d: agg %a <- %d%s@," id Window.pp window input
            (if expose then "" else " (factor)")
      | Union ids ->
          Format.fprintf ppf "  %d: union <- [%a]@," id
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
               Format.pp_print_int)
            ids)
    t.nodes;
  Format.fprintf ppf "  output: %d@]" t.output
