(** Cross-query sharing planner: when may several registered queries be
    served by {e one} engine over a merged plan?

    Queries are grouped by sharing {!key} — the aggregate function and
    the WHERE predicate — because a merged plan has a single source
    filter and a single combine function.  Within a group, a merged
    plan serves a member query soundly iff the {e chain condition}
    holds: every window of the member's standalone optimized plan is
    present in the group plan {e with the same input} (raw stream or
    the same upstream window).  Same input chain means the same items
    are folded in the same order, so each per-window emission — float
    rounding included — is byte-identical to the standalone run's; the
    member's output is then exactly the group rows filtered to its
    exposed windows.  Whenever the condition fails the server degrades
    to an independent engine and says why
    ([serve_share_degraded_total{reason}]), mirroring how
    [Fw_shard.Partition] surfaces its [Keyless] fallback. *)

type key = {
  agg : Fw_agg.Aggregate.t;
  filter : Fw_plan.Predicate.t option;
}

val key_of : Fw_sql.Analyze.analysis -> key
val key_equal : key -> key -> bool

val compatible :
  member:Fw_plan.Plan.t -> group:Fw_plan.Plan.t -> (unit, string) result
(** The chain condition, plus exposure: every window the member
    exposes must be exposed by the group plan.  The error names the
    first offending window. *)

val union_windows :
  Fw_window.Window.t list -> Fw_window.Window.t list -> Fw_window.Window.t list
(** Deduplicated union, left operand's order first. *)
