module Window = Fw_window.Window
module Plan = Fw_plan.Plan
module Predicate = Fw_plan.Predicate

type key = {
  agg : Fw_agg.Aggregate.t;
  filter : Predicate.t option;
}

let key_of (a : Fw_sql.Analyze.analysis) =
  { agg = a.Fw_sql.Analyze.agg; filter = a.Fw_sql.Analyze.filter }

let key_equal a b =
  a.agg = b.agg
  &&
  match (a.filter, b.filter) with
  | None, None -> true
  | Some p, Some q -> Predicate.equal p q
  | _ -> false

let input_equal a b =
  match (a, b) with
  | `Stream, `Stream -> true
  | `Window p, `Window q -> Window.equal p q
  | _ -> false

let rec first_error = function
  | [] -> Ok ()
  | w :: ws -> ( match w () with Ok () -> first_error ws | Error _ as e -> e)

let compatible ~member ~group =
  let exposed_group = Plan.exposed_windows group in
  let exposure w () =
    if List.exists (Window.equal w) exposed_group then Ok ()
    else
      Error
        (Printf.sprintf "window %s is not exposed by the group plan"
           (Window.to_string w))
  in
  let chain w () =
    match Plan.window_input group w with
    | group_input ->
        if input_equal group_input (Plan.window_input member w) then Ok ()
        else
          Error
            (Printf.sprintf "window %s reads a different input in the group plan"
               (Window.to_string w))
    | exception Not_found ->
        Error
          (Printf.sprintf "window %s is absent from the group plan"
             (Window.to_string w))
  in
  first_error
    (List.map exposure (Plan.exposed_windows member)
    @ List.map chain (Plan.all_windows member))

let union_windows a b = Window.dedup (a @ b)
