(** Plan cache: compiled queries keyed on canonical query text.

    The key is {!Fw_sql.Normalize.canonical} — two registrations that
    differ only in whitespace, keyword case or comments hit the same
    entry; different literals or window parameters are different keys.
    Eviction is least-recently-used at a fixed capacity.  Hit, miss and
    eviction totals (plus the current size) are published into the
    server's registry as [serve_plan_cache_*]. *)

type t

val create : ?capacity:int -> Fw_obs.Registry.t -> t
(** [capacity] defaults to 128; raises [Invalid_argument] when it is
    not positive. *)

val find : t -> string -> Fw_sql.Compile.compiled option
(** Lookup by canonical text; counts a hit or a miss and refreshes the
    entry's recency. *)

val add : t -> string -> Fw_sql.Compile.compiled -> unit
(** Insert (or refresh) an entry, evicting the least recently used one
    when the cache is full.  Only successful compilations belong in the
    cache — errors must be recomputed so their messages stay fresh. *)

val size : t -> int
val capacity : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
