module Httpd = Fw_obs.Httpd
module Export = Fw_obs.Export
module Meter = Fw_obs.Meter
module Clock = Fw_obs.Clock
module Registry = Fw_obs.Registry
module Counter = Fw_obs.Counter
module Csv_io = Fw_engine.Csv_io

let status_of_reject = function
  | Server.Closed -> "409 Conflict"
  | Server.Admission _ -> "429 Too Many Requests"
  | Server.Bad_request _ -> "400 Bad Request"
  | Server.Unknown_query _ -> "404 Not Found"

let reject r =
  Httpd.response ~status:(status_of_reject r)
    (Server.reject_message r ^ "\n")

let json body = Httpd.ok ~content_type:"application/json" body

let json_of_registered (r : Server.registered) =
  Printf.sprintf
    {|{"id":%d,"cached":%b,"shared":%b,"group":%d,"windows":%d}|}
    r.Server.r_id r.Server.r_cached r.Server.r_shared r.Server.r_group
    r.Server.r_windows

let json_of_spill = function
  | None -> "null"
  | Some (s : Server.spill_info) ->
      Printf.sprintf
        {|{"budget":%d,"resident_bytes":%d,"resident_keys":%d,"disk_bytes":%d}|}
        s.Server.s_budget s.Server.s_resident_bytes s.Server.s_resident_keys
        s.Server.s_disk_bytes

let json_of_info (i : Server.query_info) =
  Printf.sprintf
    {|{"id":%d,"tenant":%s,"text":%s,"group":%d,"shared":%b,"windows":%d,"rows":%d,"spill":%s}|}
    i.Server.i_id
    (Export.json_string i.Server.i_tenant)
    (Export.json_string i.Server.i_text)
    i.Server.i_group i.Server.i_shared i.Server.i_windows i.Server.i_rows
    (json_of_spill i.Server.i_spill)

let segments path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let int_param req name ~default =
  match List.assoc_opt name req.Httpd.query with
  | Some v -> (
      match int_of_string_opt v with Some i -> Some i | None -> None)
  | None -> Some default

let required_int_param req name =
  match List.assoc_opt name req.Httpd.query with
  | Some v -> int_of_string_opt v
  | None -> None

let handler server meter (req : Httpd.request) =
  match (req.Httpd.meth, segments req.Httpd.path) with
  | "POST", [ "query" ] -> (
      let tenant =
        match List.assoc_opt "tenant" req.Httpd.query with
        | Some t when t <> "" -> t
        | _ -> "default"
      in
      match Server.register server ~tenant req.Httpd.body with
      | Ok r -> json (json_of_registered r)
      | Error r -> reject r)
  | "DELETE", [ "query"; id ] -> (
      match int_of_string_opt id with
      | None -> Httpd.bad_request "bad query id\n"
      | Some id -> (
          match Server.unregister server id with
          | Ok () -> json (Printf.sprintf {|{"unregistered":%d}|} id)
          | Error r -> reject r))
  | "GET", [ "query"; id ] -> (
      match int_of_string_opt id with
      | None -> Httpd.bad_request "bad query id\n"
      | Some id -> (
          match Server.query_info server id with
          | Ok i -> json (json_of_info i)
          | Error r -> reject r))
  | "GET", [ "query"; id; "rows" ] -> (
      match (int_of_string_opt id, int_param req "from" ~default:0) with
      | None, _ -> Httpd.bad_request "bad query id\n"
      | _, None -> Httpd.bad_request "bad from cursor\n"
      | Some id, Some from -> (
          match Server.rows_from server id ~from with
          | Ok rows ->
              Httpd.ok ~content_type:"text/csv" (Csv_io.rows_to_csv rows)
          | Error r -> reject r))
  | "GET", [ "queries" ] ->
      json
        ("["
        ^ String.concat "," (List.map json_of_info (Server.list_queries server))
        ^ "]")
  | "POST", [ "ingest" ] -> (
      match Csv_io.parse_events req.Httpd.body with
      | Error e -> Httpd.bad_request (e ^ "\n")
      | Ok events -> (
          match Server.feed server events with
          | Ok n -> json (Printf.sprintf {|{"fed":%d}|} n)
          | Error r -> reject r))
  | "POST", [ "advance" ] -> (
      match required_int_param req "to" with
      | None -> Httpd.bad_request "advance needs ?to=<time>\n"
      | Some time -> (
          match Server.advance server time with
          | Ok () -> json (Printf.sprintf {|{"advanced":%d}|} time)
          | Error r -> reject r))
  | "POST", [ "close" ] -> (
      match required_int_param req "horizon" with
      | None -> Httpd.bad_request "close needs ?horizon=<time>\n"
      | Some horizon -> (
          match Server.close server ~horizon with
          | Ok () -> json (Printf.sprintf {|{"closed":%d}|} horizon)
          | Error r -> reject r))
  | "POST", [ "checkpoint" ] -> (
      match Server.checkpoint server with
      | Ok () -> json {|{"checkpointed":true}|}
      | Error r -> reject r)
  | "GET", [ "metrics" ] ->
      (match meter with Some m -> Meter.sample m | None -> ());
      Httpd.ok
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (Export.prometheus (Server.registry server))
  | "GET", [ "metrics.json" ] ->
      (match meter with Some m -> Meter.sample m | None -> ());
      json (Export.snapshot_json ~ts_ns:(Clock.now_ns ()) (Server.registry server))
  | "GET", [ "healthz" ] ->
      if Server.is_closed server then
        Httpd.response ~status:"503 Service Unavailable" "closed\n"
      else Httpd.ok "ok\n"
  | "GET", _ -> Httpd.not_found "not found\n"
  | _ -> Httpd.not_found "not found\n"

type t = { httpd : Httpd.t }

let start ?host ~port server =
  let registry = Server.registry server in
  let meter = Meter.create registry in
  let requests =
    Registry.counter registry "serve_http_requests_total"
      ~help:"HTTP requests answered by the query server"
  in
  let httpd =
    Httpd.start ?host ~port
      ~on_request:(fun () -> Counter.inc requests)
      (handler server (Some meter))
  in
  { httpd }

let port t = Httpd.port t.httpd
let stop t = Httpd.stop t.httpd
