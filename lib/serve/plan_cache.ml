module Registry = Fw_obs.Registry
module Counter = Fw_obs.Counter
module Gauge = Fw_obs.Gauge

type entry = { compiled : Fw_sql.Compile.compiled; mutable tick : int }

type t = {
  cap : int;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  hits_c : Counter.t;
  misses_c : Counter.t;
  evictions_c : Counter.t;
  size_g : Gauge.t;
}

let create ?(capacity = 128) registry =
  if capacity < 1 then invalid_arg "Plan_cache: capacity must be >= 1";
  {
    cap = capacity;
    table = Hashtbl.create 64;
    clock = 0;
    hits_c =
      Registry.counter registry "serve_plan_cache_hits_total"
        ~help:"Registrations answered from the plan cache";
    misses_c =
      Registry.counter registry "serve_plan_cache_misses_total"
        ~help:"Registrations that had to compile";
    evictions_c =
      Registry.counter registry "serve_plan_cache_evictions_total"
        ~help:"Entries evicted (least recently used) at capacity";
    size_g =
      Registry.gauge registry "serve_plan_cache_size"
        ~help:"Entries currently cached";
  }

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      Counter.inc t.hits_c;
      touch t e;
      Some e.compiled
  | None ->
      Counter.inc t.misses_c;
      None

(* O(size) victim scan — the capacity is a handful of hundreds of
   registered query texts, not a data plane. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, tick) when tick <= e.tick -> ()
      | _ -> victim := Some (key, e.tick))
    t.table;
  match !victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      Counter.inc t.evictions_c
  | None -> ()

let add t key compiled =
  (match Hashtbl.find_opt t.table key with
  | Some e -> touch t e
  | None ->
      if Hashtbl.length t.table >= t.cap then evict_lru t;
      let e = { compiled; tick = 0 } in
      touch t e;
      Hashtbl.add t.table key e);
  Gauge.set t.size_g (float_of_int (Hashtbl.length t.table))

let size t = Hashtbl.length t.table
let capacity t = t.cap
let hits t = Counter.get t.hits_c
let misses t = Counter.get t.misses_c
let evictions t = Counter.get t.evictions_c
