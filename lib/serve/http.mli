(** HTTP facade over {!Server}: the [fwserve] daemon's wire surface,
    running on the shared {!Fw_obs.Httpd} core (handlers execute
    sequentially in the accept domain, which is the server core's
    single-domain contract).

    Endpoints:

    - [POST /query?tenant=T] — register the SQL text in the body;
      JSON reply carries the id, plan-cache and sharing outcome.
    - [DELETE /query/<id>] — unregister.
    - [GET /query/<id>] — status JSON.
    - [GET /query/<id>/rows?from=K] — the tap from cursor [K]
      (default 0), as result-row CSV.
    - [GET /queries] — all registered queries.
    - [POST /ingest] — event CSV body fed to every engine.
    - [POST /advance?to=T] — punctuation.
    - [POST /close?horizon=H] — end of stream.
    - [POST /checkpoint] — force a snapshot (durable mode).
    - [GET /metrics], [/metrics.json], [/healthz] — observability,
      same formats as the {!Fw_obs.Scrape} endpoint.

    Rejections map to 400 (malformed), 404 (unknown query), 409
    (stream closed) and 429 (admission). *)

type t

val start : ?host:string -> port:int -> Server.t -> t
(** Serve until {!stop}; [port] 0 picks an ephemeral port. *)

val port : t -> int
val stop : t -> unit

val handler : Server.t -> Fw_obs.Meter.t option -> Fw_obs.Httpd.request -> Fw_obs.Httpd.response
(** The routing itself, exposed for in-process tests. *)
