module Registry = Fw_obs.Registry
module Counter = Fw_obs.Counter
module Gauge = Fw_obs.Gauge
module Histogram = Fw_obs.Histogram
module Clock = Fw_obs.Clock
module Window = Fw_window.Window
module Plan = Fw_plan.Plan
module Rewrite = Fw_plan.Rewrite
module Event = Fw_engine.Event
module Row = Fw_engine.Row
module Stream_exec = Fw_engine.Stream_exec
module Checkpoint = Fw_snap.Checkpoint
module Recover = Fw_snap.Recover
module Vec = Fw_util.Vec

type config = {
  eta : int;
  incremental : bool;
  factor_windows : bool;
  sharing : bool;
  max_queries : int;
  tenant_quota : int;
  cache_capacity : int;
  state_dir : string option;
  every : int;
  memory_budget : int option;
}

let default_config =
  {
    eta = 1;
    incremental = false;
    factor_windows = true;
    sharing = true;
    max_queries = 64;
    tenant_quota = 16;
    cache_capacity = 128;
    state_dir = None;
    every = 1000;
    memory_budget = None;
  }

(* The smallest per-group slice of --memory-budget worth running under:
   below this an engine would thrash every access through the spill
   file.  A registration that would create one group too many for the
   budget is refused at admission (HTTP 429). *)
let min_group_budget = 64 * 1024

type reject =
  | Closed
  | Admission of string
  | Bad_request of string
  | Unknown_query of int

let reject_message = function
  | Closed -> "the stream is closed"
  | Admission r -> r
  | Bad_request r -> r
  | Unknown_query id -> Printf.sprintf "no registered query %d" id

type registered = {
  r_id : int;
  r_cached : bool;
  r_shared : bool;
  r_group : int;
  r_windows : int;
}

type spill_info = {
  s_budget : int;  (** the group's current share of --memory-budget *)
  s_resident_bytes : int;
  s_resident_keys : int;
  s_disk_bytes : int;
}

type query_info = {
  i_id : int;
  i_tenant : string;
  i_text : string;
  i_group : int;
  i_shared : bool;
  i_windows : int;
  i_rows : int;
  i_spill : spill_info option;
}

type query = {
  q_id : int;
  q_tenant : string;
  q_text : string;  (* canonical *)
  q_plan : Plan.t;  (* standalone optimized plan: the sharing witness *)
  q_exposed : Window.t list;
  q_from : int;  (* group rows emitted before this query joined *)
  q_group : int;
  q_rows : Row.t Vec.t;  (* the tap, in engine emission order *)
  q_rows_c : Counter.t;
}

type engine = E_direct of Stream_exec.t | E_durable of Checkpoint.t

type group = {
  g_id : int;
  g_key : Share.key;
  mutable g_members : query list;  (* registration order *)
  mutable g_plan : Plan.t;
  mutable g_union : Window.t list;  (* window set g_plan was planned for *)
  mutable g_frozen : bool;  (* engine started: the plan may not change *)
  mutable g_engine : engine option;
  mutable g_spill : Fw_spill.Pool.t option;  (* with the engine, budgeted *)
  mutable g_drained : int;  (* engine rows copied into member taps *)
}

type t = {
  cfg : config;
  registry : Registry.t;
  cache : Plan_cache.t;
  queries : (int, query) Hashtbl.t;
  mutable groups : group list;  (* creation order *)
  mutable next_qid : int;
  mutable next_gid : int;
  mutable wm : int;
  mutable closed : bool;
  mutable manifest : out_channel option;
  mutable replaying : bool;  (* manifest replay: suppress appends *)
  reg_hit_c : Counter.t;
  reg_miss_c : Counter.t;
  reg_hit_ns : Histogram.t;
  reg_miss_ns : Histogram.t;
  share_joins_c : Counter.t;
  ingested_c : Counter.t;
  rows_c : Counter.t;
  unregistered_c : Counter.t;
  queries_g : Gauge.t;
  groups_g : Gauge.t;
  engines_g : Gauge.t;
  shared_g : Gauge.t;
  wm_g : Gauge.t;
}

let registry t = t.registry
let config t = t.cfg
let is_closed t = t.closed
let watermark t = t.wm
let query_count t = Hashtbl.length t.queries
let group_count t = List.length t.groups
let mode t = if t.cfg.incremental then Stream_exec.Incremental else Stream_exec.Naive

(* ---- filesystem helpers (durable mode) ---- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* group checkpoint dirs are flat (snapshots, log segments, row log) *)
let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if not (Sys.is_directory p) then
          try Sys.remove p with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let group_dir sd gid = Filename.concat sd (Printf.sprintf "g%d" gid)
let manifest_path sd = Filename.concat sd "queries.log"

let manifest_append t line =
  if not t.replaying then
    match t.manifest with
    | Some oc ->
        output_string oc line;
        output_char oc '\n';
        flush oc
    | None -> ()

(* ---- metrics ---- *)

let degrade t reason =
  Counter.inc
    (Registry.counter t.registry "serve_share_degraded_total"
       ~labels:[ ("reason", reason) ]
       ~help:"Sharing fallbacks to an independent engine")

let admission_reject t reason =
  Counter.inc
    (Registry.counter t.registry "serve_admission_rejects_total"
       ~labels:[ ("reason", reason) ]
       ~help:"Registrations refused by admission control")

let tenant_count t tenant =
  Hashtbl.fold (fun _ q n -> if q.q_tenant = tenant then n + 1 else n) t.queries 0

let refresh_tenant t tenant =
  Gauge.set
    (Registry.gauge t.registry "serve_tenant_queries"
       ~labels:[ ("tenant", tenant) ]
       ~help:"Registered queries per tenant")
    (float_of_int (tenant_count t tenant))

let refresh_gauges t =
  Gauge.set t.queries_g (float_of_int (Hashtbl.length t.queries));
  Gauge.set t.groups_g (float_of_int (List.length t.groups));
  Gauge.set t.engines_g
    (float_of_int
       (List.length (List.filter (fun g -> Option.is_some g.g_engine) t.groups)));
  let shared =
    List.fold_left
      (fun acc g ->
        match g.g_members with
        | _ :: _ :: _ -> acc + List.length g.g_members
        | _ -> acc)
      0 t.groups
  in
  Gauge.set t.shared_g (float_of_int shared);
  Gauge.set t.wm_g (float_of_int t.wm)

(* ---- engines ---- *)

let engine_row_count = function
  | E_direct x -> Stream_exec.row_count x
  | E_durable c -> Checkpoint.row_count c

let engine_row e i =
  match e with
  | E_direct x -> Stream_exec.row x i
  | E_durable c -> Checkpoint.row c i

let engine_feed e ev =
  match e with
  | E_direct x -> Stream_exec.feed x ev
  | E_durable c -> Checkpoint.feed c ev

let engine_advance e time =
  match e with
  | E_direct x -> Stream_exec.advance x time
  | E_durable c -> Checkpoint.advance c time

let engine_close e ~horizon =
  match e with
  | E_direct x -> ignore (Stream_exec.close x ~horizon)
  | E_durable c -> ignore (Checkpoint.close c ~horizon)

let drain_group t g =
  match g.g_engine with
  | None -> ()
  | Some e ->
      let n = engine_row_count e in
      while g.g_drained < n do
        let r = engine_row e g.g_drained in
        List.iter
          (fun q ->
            if
              g.g_drained >= q.q_from
              && List.exists (Window.equal r.Row.window) q.q_exposed
            then begin
              Vec.push q.q_rows r;
              Counter.inc q.q_rows_c;
              Counter.inc t.rows_c
            end)
          g.g_members;
        g.g_drained <- g.g_drained + 1
      done

let drain_all t = List.iter (drain_group t) t.groups

(* Every budgeted group runs under its own pool (the engines share one
   accept domain, but per-group pools keep the series and the spill
   files apart); the configured budget is split evenly across the pools
   that exist, re-split whenever one comes or goes. *)
let rebalance_pools t =
  match t.cfg.memory_budget with
  | None -> ()
  | Some total -> (
      match List.filter_map (fun g -> g.g_spill) t.groups with
      | [] -> ()
      | pools ->
          let share = total / List.length pools in
          List.iter (fun p -> Fw_spill.Pool.set_budget p share) pools)

let ensure_pool t g =
  match (g.g_spill, t.cfg.memory_budget) with
  | Some _, _ | _, None -> ()
  | None, Some total ->
      g.g_spill <-
        Some
          (Fw_spill.Pool.create ~registry:t.registry
             ~labels:[ ("group", string_of_int g.g_id) ]
             ~budget:total ());
      rebalance_pools t

let drop_pool t g =
  match g.g_spill with
  | None -> ()
  | Some p ->
      g.g_spill <- None;
      Fw_spill.Pool.close p;
      rebalance_pools t

let ensure_engine t g =
  if not (Option.is_some g.g_engine) then begin
    ensure_pool t g;
    let e =
      match t.cfg.state_dir with
      | Some sd ->
          E_durable
            (Checkpoint.create
               ~dir:(group_dir sd g.g_id)
               ~every:t.cfg.every ~mode:(mode t) ~observe:false
               ?spill:g.g_spill g.g_plan)
      | None ->
          E_direct
            (Stream_exec.create ~mode:(mode t) ~observe:false ?spill:g.g_spill
               g.g_plan)
    in
    g.g_engine <- Some e;
    g.g_frozen <- true;
    (* logged after the directory exists, so a frozen group always has
       something to recover from *)
    manifest_append t (Printf.sprintf "F %d" g.g_id)
  end

(* ---- sharing placement ---- *)

let chain_ok ~member ~group =
  match Share.compatible ~member ~group with Ok () -> true | Error _ -> false

(* How (whether) a registration may join group [g].  [Ok None]: join
   as-is; [Ok (Some (plan, union))]: join after re-planning the group
   over the merged window set; [Error reason]: degrade. *)
let try_join t g ~plan ~windows =
  if g.g_frozen then
    if chain_ok ~member:plan ~group:g.g_plan then Ok None
    else Error "frozen-group"
  else if
    List.for_all (fun w -> List.exists (Window.equal w) g.g_union) windows
    && chain_ok ~member:plan ~group:g.g_plan
  then Ok None
  else begin
    let union = Share.union_windows g.g_union windows in
    let outcome =
      Rewrite.optimize ~eta:t.cfg.eta ~factor_windows:t.cfg.factor_windows
        ?filter:g.g_key.Share.filter g.g_key.Share.agg union
    in
    let plan' = outcome.Rewrite.plan in
    if
      chain_ok ~member:plan ~group:plan'
      && List.for_all (fun m -> chain_ok ~member:m.q_plan ~group:plan') g.g_members
    then Ok (Some (plan', union))
    else Error "plan-mismatch"
  end

let new_group t ~key ~plan ~windows =
  let g =
    {
      g_id = t.next_gid;
      g_key = key;
      g_members = [];
      g_plan = plan;
      g_union = windows;
      g_frozen = false;
      g_engine = None;
      g_spill = None;
      g_drained = 0;
    }
  in
  t.next_gid <- t.next_gid + 1;
  t.groups <- t.groups @ [ g ];
  g

let place t ~key ~plan ~windows =
  if not t.cfg.sharing then `New
  else
    let rec go = function
      | [] -> `New
      | g :: gs when Share.key_equal g.g_key key -> (
          match try_join t g ~plan ~windows with
          | Ok replan -> `Join (g, replan)
          | Error reason ->
              degrade t reason;
              go gs)
      | _ :: gs -> go gs
    in
    go t.groups

(* ---- registration ---- *)

let do_register t ~id ~from_recorded ~tenant text =
  if Hashtbl.length t.queries >= t.cfg.max_queries then begin
    admission_reject t "max-queries";
    Error (Admission "max-queries: the server is at capacity")
  end
  else if tenant_count t tenant >= t.cfg.tenant_quota then begin
    admission_reject t "tenant-quota";
    Error
      (Admission (Printf.sprintf "tenant-quota: tenant %s is at capacity" tenant))
  end
  else
    let t0 = Clock.now_ns () in
    match Fw_sql.Normalize.canonical text with
    | Error e -> Error (Bad_request ("parse error: " ^ e))
    | Ok canon -> (
        let cached, compiled_r =
          match Plan_cache.find t.cache canon with
          | Some c -> (true, Ok c)
          | None -> (
              match
                Fw_sql.Compile.compile ~eta:t.cfg.eta
                  ~factor_windows:t.cfg.factor_windows canon
              with
              | Ok c ->
                  Plan_cache.add t.cache canon c;
                  (false, Ok c)
              | Error e -> (false, Error e))
        in
        match compiled_r with
        | Error e -> Error (Bad_request e)
        | Ok compiled ->
            let key = Share.key_of compiled.Fw_sql.Compile.analysis in
            let plan = compiled.Fw_sql.Compile.outcome.Rewrite.plan in
            let exposed = Plan.exposed_windows plan in
            let placement = place t ~key ~plan ~windows:exposed in
            let budget_blocks =
              (* one more group would shrink every pool's share below
                 the floor; joins add no pool, so they always fit.
                 Replay skips the check: those groups were admitted. *)
              match (placement, t.cfg.memory_budget) with
              | `New, Some total ->
                  (not t.replaying)
                  && total / (List.length t.groups + 1) < min_group_budget
              | _ -> false
            in
            if budget_blocks then begin
              admission_reject t "memory-budget";
              Error
                (Admission
                   (Printf.sprintf
                      "memory-budget: %d bytes across %d groups leaves less \
                       than the %d-byte per-group floor"
                      (Option.value t.cfg.memory_budget ~default:0)
                      (List.length t.groups + 1)
                      min_group_budget))
            end
            else
            let g, joined =
              match placement with
              | `New -> (new_group t ~key ~plan ~windows:exposed, false)
              | `Join (g, replan) ->
                  (match replan with
                  | Some (plan', union) ->
                      g.g_plan <- plan';
                      g.g_union <- union
                  | None -> ());
                  (g, true)
            in
            let qid = match id with Some i -> i | None -> t.next_qid in
            t.next_qid <- max t.next_qid (qid + 1);
            let from =
              match from_recorded with
              | Some f -> f
              | None -> (
                  match g.g_engine with
                  | Some e -> engine_row_count e
                  | None -> 0)
            in
            let q =
              {
                q_id = qid;
                q_tenant = tenant;
                q_text = canon;
                q_plan = plan;
                q_exposed = exposed;
                q_from = from;
                q_group = g.g_id;
                q_rows = Vec.create ();
                q_rows_c =
                  Registry.counter t.registry "serve_query_rows_total"
                    ~labels:
                      [ ("query", string_of_int qid); ("tenant", tenant) ]
                    ~help:"Rows delivered to this query's tap";
              }
            in
            g.g_members <- g.g_members @ [ q ];
            Hashtbl.replace t.queries qid q;
            if joined then Counter.inc t.share_joins_c;
            let dt = Clock.elapsed_ns ~since:t0 in
            if cached then begin
              Counter.inc t.reg_hit_c;
              Histogram.record t.reg_hit_ns dt
            end
            else begin
              Counter.inc t.reg_miss_c;
              Histogram.record t.reg_miss_ns dt
            end;
            manifest_append t (Printf.sprintf "R %d %d %S %S" qid from tenant canon);
            refresh_gauges t;
            refresh_tenant t tenant;
            Ok
              {
                r_id = qid;
                r_cached = cached;
                r_shared =
                  (match g.g_members with _ :: _ :: _ -> true | _ -> false);
                r_group = g.g_id;
                r_windows = List.length exposed;
              })

let register t ~tenant text =
  if t.closed then Error Closed
  else do_register t ~id:None ~from_recorded:None ~tenant text

let unregister t id =
  match Hashtbl.find_opt t.queries id with
  | None -> Error (Unknown_query id)
  | Some q ->
      Hashtbl.remove t.queries id;
      t.groups <-
        List.filter_map
          (fun g ->
            if g.g_id <> q.q_group then Some g
            else begin
              g.g_members <- List.filter (fun m -> m.q_id <> id) g.g_members;
              if g.g_members <> [] then Some g
              else begin
                (* last member gone: drop the engine and its directory *)
                (match (g.g_engine, t.cfg.state_dir) with
                | Some (E_durable c), Some sd ->
                    (try ignore (Checkpoint.close c ~horizon:t.wm)
                     with Invalid_argument _ -> ());
                    rm_rf (group_dir sd g.g_id)
                | _, Some sd -> rm_rf (group_dir sd g.g_id)
                | _ -> ());
                (match g.g_spill with
                | Some p ->
                    g.g_spill <- None;
                    Fw_spill.Pool.close p
                | None -> ());
                None
              end
            end)
          t.groups;
      (* a freed pool's share flows back to the survivors *)
      rebalance_pools t;
      Counter.inc t.unregistered_c;
      manifest_append t (Printf.sprintf "U %d" id);
      refresh_gauges t;
      refresh_tenant t q.q_tenant;
      Ok ()

(* ---- queries over the catalog ---- *)

let info_of t q =
  let group = List.find_opt (fun g -> g.g_id = q.q_group) t.groups in
  let members =
    match group with Some g -> List.length g.g_members | None -> 1
  in
  let spill =
    match group with
    | Some { g_spill = Some p; _ } ->
        Some
          {
            s_budget = Fw_spill.Pool.budget p;
            s_resident_bytes = Fw_spill.Pool.resident_bytes p;
            s_resident_keys = Fw_spill.Pool.resident_keys p;
            s_disk_bytes = Fw_spill.Pool.disk_bytes p;
          }
    | _ -> None
  in
  {
    i_id = q.q_id;
    i_tenant = q.q_tenant;
    i_text = q.q_text;
    i_group = q.q_group;
    i_shared = members > 1;
    i_windows = List.length q.q_exposed;
    i_rows = Vec.length q.q_rows;
    i_spill = spill;
  }

let query_info t id =
  match Hashtbl.find_opt t.queries id with
  | None -> Error (Unknown_query id)
  | Some q -> Ok (info_of t q)

let list_queries t =
  Hashtbl.fold (fun _ q acc -> q :: acc) t.queries []
  |> List.sort (fun a b -> Int.compare a.q_id b.q_id)
  |> List.map (info_of t)

let rows_from t id ~from =
  match Hashtbl.find_opt t.queries id with
  | None -> Error (Unknown_query id)
  | Some q ->
      let n = Vec.length q.q_rows in
      let from = if from < 0 then 0 else if from > n then n else from in
      let out = ref [] in
      for i = n - 1 downto from do
        out := Vec.get q.q_rows i :: !out
      done;
      Ok !out

(* ---- the ingest stream ---- *)

let ordered_from wm events =
  let rec go prev = function
    | [] -> true
    | e :: tl -> e.Event.time >= prev && go e.Event.time tl
  in
  go wm events

let start_engines t =
  List.iter (ensure_engine t) t.groups;
  refresh_gauges t

let feed t events =
  if t.closed then Error Closed
  else if events = [] then Ok 0 (* nothing to feed: don't freeze groups *)
  else if not (ordered_from t.wm events) then
    Error
      (Bad_request "events must be time-ordered and not older than the watermark")
  else begin
    start_engines t;
    List.iter
      (fun e ->
        List.iter
          (fun g ->
            match g.g_engine with Some en -> engine_feed en e | None -> ())
          t.groups;
        t.wm <- max t.wm e.Event.time)
      events;
    drain_all t;
    let n = List.length events in
    Counter.add t.ingested_c n;
    Gauge.set t.wm_g (float_of_int t.wm);
    manifest_append t (Printf.sprintf "W %d" t.wm);
    Ok n
  end

let advance t time =
  if t.closed then Error Closed
  else if time < t.wm then
    Error (Bad_request "cannot advance behind the watermark")
  else begin
    start_engines t;
    List.iter
      (fun g ->
        match g.g_engine with Some e -> engine_advance e time | None -> ())
      t.groups;
    t.wm <- time;
    drain_all t;
    Gauge.set t.wm_g (float_of_int t.wm);
    manifest_append t (Printf.sprintf "W %d" t.wm);
    Ok ()
  end

let close t ~horizon =
  if t.closed then Error Closed
  else if horizon < t.wm then
    Error (Bad_request "cannot close behind the watermark")
  else begin
    start_engines t;
    List.iter
      (fun g ->
        match g.g_engine with Some e -> engine_close e ~horizon | None -> ())
      t.groups;
    drain_all t;
    t.wm <- horizon;
    t.closed <- true;
    (* taps stay readable; only the engines' scratch spill files go *)
    List.iter (fun g -> drop_pool t g) t.groups;
    (match t.manifest with Some oc -> close_out oc | None -> ());
    t.manifest <- None;
    refresh_gauges t;
    Ok ()
  end

let checkpoint t =
  if t.closed then Error Closed
  else
    match t.cfg.state_dir with
    | None -> Error (Bad_request "the server has no state directory")
    | Some _ ->
        List.iter
          (fun g ->
            match g.g_engine with
            | Some (E_durable c) -> Checkpoint.checkpoint_now c
            | _ -> ())
          t.groups;
        Ok ()

(* ---- construction, manifest replay, recovery ---- *)

let make ?registry cfg =
  let registry = match registry with Some r -> r | None -> Registry.create () in
  let cache = Plan_cache.create ~capacity:cfg.cache_capacity registry in
  {
    cfg;
    registry;
    cache;
    queries = Hashtbl.create 64;
    groups = [];
    next_qid = 1;
    next_gid = 0;
    wm = 0;
    closed = false;
    manifest = None;
    replaying = false;
    reg_hit_c =
      Registry.counter registry "serve_registrations_total"
        ~labels:[ ("cache", "hit") ]
        ~help:"Queries registered";
    reg_miss_c =
      Registry.counter registry "serve_registrations_total"
        ~labels:[ ("cache", "miss") ]
        ~help:"Queries registered";
    reg_hit_ns =
      Registry.histogram registry "serve_register_ns"
        ~labels:[ ("cache", "hit") ]
        ~help:"Registration latency (normalize, cache, place)";
    reg_miss_ns =
      Registry.histogram registry "serve_register_ns"
        ~labels:[ ("cache", "miss") ]
        ~help:"Registration latency (normalize, compile, place)";
    share_joins_c =
      Registry.counter registry "serve_share_joins_total"
        ~help:"Registrations merged into an existing group";
    ingested_c =
      Registry.counter registry "serve_events_ingested_total"
        ~help:"Events accepted into the shared stream";
    rows_c =
      Registry.counter registry "serve_rows_total"
        ~help:"Rows delivered across all query taps";
    unregistered_c =
      Registry.counter registry "serve_unregistered_total"
        ~help:"Queries unregistered";
    queries_g = Registry.gauge registry "serve_queries" ~help:"Registered queries";
    groups_g = Registry.gauge registry "serve_groups" ~help:"Sharing groups";
    engines_g = Registry.gauge registry "serve_engines" ~help:"Running engines";
    shared_g =
      Registry.gauge registry "serve_shared_queries"
        ~help:"Queries served by a multi-member group";
    wm_g =
      Registry.gauge registry "serve_watermark_ticks"
        ~help:"Server watermark (event time)";
  }

let replay_line t line =
  let scan fmt k =
    try Ok (Scanf.sscanf line fmt k) with
    | Scanf.Scan_failure m | Failure m ->
        Error (Printf.sprintf "manifest: %s: %s" m line)
    | End_of_file -> Error ("manifest: truncated line: " ^ line)
  in
  let flatten = function Ok r -> r | Error _ as e -> e in
  if line = "" then Ok ()
  else
    match line.[0] with
    | 'R' ->
        flatten
          (scan "R %d %d %S %S" (fun id from tenant text ->
               match
                 do_register t ~id:(Some id) ~from_recorded:(Some from) ~tenant
                   text
               with
               | Ok _ -> Ok ()
               | Error r ->
                   Error
                     (Printf.sprintf "manifest: replaying query %d: %s" id
                        (reject_message r))))
    | 'U' ->
        flatten
          (scan "U %d" (fun id ->
               match unregister t id with
               | Ok () -> Ok ()
               | Error r ->
                   Error
                     (Printf.sprintf "manifest: replaying unregister %d: %s" id
                        (reject_message r))))
    | 'F' ->
        flatten
          (scan "F %d" (fun gid ->
               match List.find_opt (fun g -> g.g_id = gid) t.groups with
               | Some g ->
                   g.g_frozen <- true;
                   Ok ()
               | None ->
                   Error (Printf.sprintf "manifest: no group %d to freeze" gid)))
    | 'W' ->
        flatten
          (scan "W %d" (fun wm ->
               t.wm <- max t.wm wm;
               Ok ()))
    | _ -> Error ("manifest: unparseable line: " ^ line)

let replay_manifest t path =
  let ic = open_in path in
  let rec loop () =
    match input_line ic with
    | line -> ( match replay_line t line with Ok () -> loop () | Error _ as e -> e)
    | exception End_of_file -> Ok ()
  in
  let r = loop () in
  close_in ic;
  r

let recover_groups t sd =
  let rec go = function
    | [] -> Ok ()
    | g :: gs ->
        if not g.g_frozen then go gs
        else (
          ensure_pool t g;
          match
            Recover.load
              ~dir:(group_dir sd g.g_id)
              ~every:t.cfg.every ~observe:false ~mode:(mode t)
              ?spill:g.g_spill g.g_plan
          with
          | Ok r ->
              g.g_engine <- Some (E_durable r.Recover.checkpoint);
              go gs
          | Error e -> Error (Printf.sprintf "recovering group %d: %s" g.g_id e))
  in
  go t.groups

let create ?registry cfg =
  if cfg.max_queries < 1 then Error "max_queries must be >= 1"
  else if cfg.tenant_quota < 1 then Error "tenant_quota must be >= 1"
  else if cfg.cache_capacity < 1 then Error "cache_capacity must be >= 1"
  else if cfg.every < 1 then Error "every must be >= 1"
  else if
    match cfg.memory_budget with Some b -> b < 0 | None -> false
  then Error "memory_budget must be >= 0 bytes"
  else
    let t = make ?registry cfg in
    match cfg.state_dir with
    | None -> Ok t
    | Some sd -> (
        mkdir_p sd;
        let mpath = manifest_path sd in
        let replayed =
          if Sys.file_exists mpath then begin
            t.replaying <- true;
            let r = replay_manifest t mpath in
            t.replaying <- false;
            r
          end
          else Ok ()
        in
        match replayed with
        | Error e -> Error e
        | Ok () -> (
            match recover_groups t sd with
            | Error e -> Error e
            | Ok () ->
                (* recovered row history rebuilds every tap *)
                drain_all t;
                refresh_gauges t;
                t.manifest <-
                  Some
                    (open_out_gen
                       [ Open_wronly; Open_append; Open_creat ]
                       0o644 mpath);
                Ok t))
