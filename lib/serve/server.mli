(** The multi-query server core: registration, shared execution,
    per-query result taps, admission control and durable restarts.

    One server owns one ingest stream.  Each registered query is
    compiled through the plan cache ({!Plan_cache}), then placed into a
    sharing {e group} ({!Share}): queries whose merged plan passes the
    chain condition execute on one engine, everything else degrades to
    an independent engine — so N registered queries cost between 1 and
    N engines, and every query's rows are byte-identical to what an
    independent [fwopt run] of its text would produce (the served
    differential path in {!Fw_check} fuzzes exactly this).

    Group lifecycle: a group is freely re-planned while no engine has
    started (registrations merge window sets and re-optimize); once the
    ingest stream starts its engine ({e frozen}), later registrations
    join only when their plan is chain-compatible with the running plan
    as-is — there is no operator-state migration.  A query joining a
    running engine only sees rows emitted from its registration onward.

    Durability: with a state directory, each group runs under
    {!Fw_snap.Checkpoint} in [g<id>/], and a manifest log
    ([queries.log]) records every registration ([R]), unregistration
    ([U]) and engine start ([F]).  {!create} replays the manifest —
    grouping is deterministic, so the same groups and plans are rebuilt
    warm from the plan cache — then recovers every started engine with
    {!Fw_snap.Recover}; recovered row history rebuilds the taps, so a
    restart loses nothing.

    The server is {e not} locked: drive it from one domain (the HTTP
    layer runs handlers sequentially in the accept domain, which is
    exactly that). *)

type config = {
  eta : int;  (** events per tick for the cost model *)
  incremental : bool;  (** engine execution mode *)
  factor_windows : bool;  (** allow Algorithm 2 factor windows *)
  sharing : bool;  (** [false]: every query gets its own engine *)
  max_queries : int;
  tenant_quota : int;  (** per-tenant registered-query cap *)
  cache_capacity : int;
  state_dir : string option;  (** durable mode when set *)
  every : int;  (** checkpoint cadence (events) in durable mode *)
  memory_budget : int option;
      (** total resident-state budget in bytes, split evenly across the
          groups' {!Fw_spill.Pool}s (re-split as groups come and go).
          A registration that would create a group whose share falls
          below the 64 KiB floor is refused ([Admission
          "memory-budget"] — HTTP 429). *)
}

val default_config : config
(** eta 1, naive mode, factor windows on, sharing on, 64 queries,
    16 per tenant, cache 128, no state dir, checkpoint every 1000,
    no memory budget. *)

type reject =
  | Closed  (** the stream was closed; terminal *)
  | Admission of string  (** quota refusals; the payload is the reason *)
  | Bad_request of string
  | Unknown_query of int

val reject_message : reject -> string

type registered = {
  r_id : int;
  r_cached : bool;  (** plan-cache hit *)
  r_shared : bool;  (** placed in a group with other queries *)
  r_group : int;
  r_windows : int;
}

type spill_info = {
  s_budget : int;  (** the group's current share of the memory budget *)
  s_resident_bytes : int;
  s_resident_keys : int;
  s_disk_bytes : int;
}

type query_info = {
  i_id : int;
  i_tenant : string;
  i_text : string;  (** canonical *)
  i_group : int;
  i_shared : bool;
  i_windows : int;
  i_rows : int;
  i_spill : spill_info option;
      (** the group's pool accounting; [None] unbudgeted or engine not
          started *)
}

type t

val create : ?registry:Fw_obs.Registry.t -> config -> (t, string) result
(** With a state directory this replays the manifest and recovers every
    started engine, failing closed on an unreadable manifest or an
    unrecoverable group. *)

val registry : t -> Fw_obs.Registry.t
val config : t -> config

val register : t -> tenant:string -> string -> (registered, reject) result
val unregister : t -> int -> (unit, reject) result
val query_info : t -> int -> (query_info, reject) result
val list_queries : t -> query_info list

val rows_from : t -> int -> from:int -> (Fw_engine.Row.t list, reject) result
(** The query's result tap in emission order, from cursor position
    [from] (clamped into range); poll with [from] = rows already seen
    to stream results incrementally. *)

val feed : t -> Fw_engine.Event.t list -> (int, reject) result
(** Feed ordered events to every group's engine (starting engines that
    have not run yet) and drain new rows into the taps.  The batch is
    validated first: events must be non-decreasing in time and none may
    be older than the server watermark — on violation nothing is fed.
    Returns the number of events ingested. *)

val advance : t -> int -> (unit, reject) result
(** Punctuation: fire every instance ending at or before the time. *)

val close : t -> horizon:int -> (unit, reject) result
(** Advance all engines to the horizon and stop accepting input —
    engines for never-fed groups are started first so their (empty)
    output is flushed too.  Taps remain readable. *)

val checkpoint : t -> (unit, reject) result
(** Force a snapshot of every running engine (durable mode only). *)

val is_closed : t -> bool
val watermark : t -> int
val query_count : t -> int
val group_count : t -> int
