(** Runtime sub-aggregate states: the [g]/[h] functions of the taxonomy,
    packaged as a commutative monoid with a partial inverse.

    A {!state} is the constant-size summary produced by [g] for
    distributive/algebraic functions, or the full multiset of values for
    holistic ones.  States are built from raw values ({!of_value},
    {!add}), merged across sub-windows ({!merge}), and finalized into
    the aggregate result ({!finalize}).

    The monoid structure is what the incremental executors lean on:
    {!identity} is a neutral element for {!merge}, {!merge} is
    associative and commutative up to floating-point rounding, and for
    the aggregates with an algebraic inverse (COUNT/SUM/AVG/STDEV)
    {!inverse} undoes a merge — the subtract-on-evict fast path of
    {!Fw_agg.Swag}.  MIN/MAX/MEDIAN have no inverse; sliding queues
    over them use the two-stacks flip instead, as they do for STDEV,
    whose inverse exists but is numerically treacherous (see
    {!invertible}).

    {!merge} corresponds to aggregating sub-aggregates.  For MIN/MAX it
    is sound even when sub-windows overlap (Theorem 6); for
    COUNT/SUM/AVG/STDEV it is only sound over disjoint partitions
    (Theorem 5) — enforcing that is the optimizer's job (it selects
    partitioned-by edges for those functions).

    STDEV states keep Welford-style (count, mean, M2) rather than
    (sum, sum-of-squares): the latter cancels catastrophically when the
    mean dwarfs the spread (values near 1e8 with variance ~1 lose every
    significant digit of the variance).  {!merge} uses Chan, Golub &
    LeVeque's pairwise update, which is stable in the same regime. *)

type state

val identity : Aggregate.t -> state
(** The neutral element: [merge (identity f) s = s] and
    [add (identity f) v = of_value f v].  Finalizing an identity state
    yields the aggregate's empty-input value (infinities for MIN/MAX,
    [0] for COUNT/SUM, [nan] for AVG/STDEV/MEDIAN). *)

val of_value : Aggregate.t -> float -> state
(** Summary of a singleton input. *)

val add : state -> float -> state
(** Fold one more raw value into a summary. *)

val merge : state -> state -> state
(** Combine two sub-aggregate summaries.  Raises [Invalid_argument] when
    the states come from different aggregate functions. *)

val invertible : Aggregate.t -> bool
(** Whether subtract-on-evict is {e numerically safe} for this
    aggregate: [true] for COUNT/SUM/AVG only.  STDEV's {!inverse}
    exists algebraically but computes M2 as a difference of nearly
    equal quantities (catastrophic cancellation: a zero-variance window
    acquires a spurious residual), so eviction must re-merge instead of
    subtract — the two-stacks path. *)

val inverse : state -> state -> state option
(** [inverse total part] removes [part]'s contribution from [total]:
    if [total = merge a part] then [inverse total part] recovers [a]
    (up to floating-point rounding).  Returns [None] for
    non-invertible aggregates (MIN/MAX/MEDIAN) and when [part] counts
    more items than [total].  Raises [Invalid_argument] when the states
    come from different aggregate functions. *)

val finalize : state -> float
(** The [h] function: extract the aggregate result.  For COUNT the
    result is the count as a float; MEDIAN of an even-sized multiset is
    the mean of the two middle values. *)

val count_of : state -> int
(** Number of raw values summarized, for states that track it (COUNT,
    AVG, STDEV, MEDIAN); [1] for MIN/MAX/SUM whose summaries carry no
    count.  Diagnostics and tests only. *)

val aggregate_of : state -> Aggregate.t

(** {2 Serializable view}

    A one-to-one public mirror of the state constructors so the
    checkpoint codec ({!Fw_snap.Codec}) can serialize engine state
    without this module growing an I/O dependency.  The view is the
    {e exact} internal representation — round-tripping through it
    preserves every float bit, which the byte-identical recovery
    guarantee relies on. *)

type view =
  | V_min of float
  | V_max of float
  | V_count of int
  | V_sum of float
  | V_avg of { sum : float; count : int }
  | V_stdev of { count : int; mean : float; m2 : float }
      (** Welford / Chan running (count, mean, M2) *)
  | V_median of float list  (** holistic: the raw multiset, newest first *)

val view : state -> view

val of_view : view -> state
(** Raises [Invalid_argument] on a view no sequence of
    {!of_value}/{!add}/{!merge} could have produced (negative counts). *)

val pp : Format.formatter -> state -> unit

val equal_result : float -> float -> bool
(** Result comparison with a small relative tolerance, for comparing
    naive vs rewritten plan outputs (floating-point merge order may
    differ). *)
