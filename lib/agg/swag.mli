(** Sliding-window aggregation queue: O(1) amortized per operation.

    A FIFO of indexed sub-aggregate states (panes) answering "merge of
    everything currently enqueued" in O(1), the building block of the
    incremental window executor (Tangwongsan, Hirzel & Schneider's SWAG
    framing).  Two implementations sit behind one interface, chosen by
    the aggregate:

    - {e subtract-on-evict} for invertible aggregates (COUNT/SUM/AVG):
      a running merged state, updated with {!Combine.inverse} on
      eviction — O(1) worst case;
    - {e two-stacks} for the rest (MIN/MAX/MEDIAN, and STDEV whose
      inverse is numerically unsafe — see {!Combine.invertible}): a
      front stack of suffix-merged states and a back stack with a
      running merge; evicting past an empty front flips the back
      across — O(1) amortized, no inverse needed.

    Indices must be pushed in non-decreasing order (pane order); the
    queue never reorders. *)

type t

val create : Aggregate.t -> t

val push : t -> idx:int -> Combine.state -> unit
(** Enqueue the sealed pane [idx]'s state.  Indices must not decrease
    across pushes. *)

val evict_below : t -> int -> unit
(** Drop every entry with index < the bound (panes that slid out of the
    current window instance). *)

val query : t -> Combine.state option
(** Merge of all enqueued states; [None] when empty. *)

val slide : t -> below:int -> Combine.state option
(** Fused {!evict_below} + {!query}: slide the window forward and
    answer in one call.  Semantically exactly the two calls in
    sequence (same merges, same counters, same float rounding); the
    single entry point the batched firing path uses per instance. *)

val length : t -> int
val is_empty : t -> bool

(** {2 Introspection}

    Cumulative lifetime counters, maintained with O(1) increments, for
    the observability layer and the amortized-complexity tests (a
    queue's flip count, for instance, is bounded by its push count). *)

val evicted : t -> int
(** Entries dropped by {!evict_below} so far. *)

val flips : t -> int
(** Two-stacks front rebuilds so far; always [0] for the subtractive
    representation. *)

val merges : t -> int
(** {!Combine.merge} calls performed internally so far (push
    accumulation, flips, and non-invertible recomputes). *)

(** {2 Snapshot support}

    {!export} captures the queue's {e exact} internal shape — including
    the two-stacks front/back split and the cumulative front states —
    and {!import} restores it verbatim.  Re-pushing entries into a
    fresh queue instead would regroup merges and perturb float
    rounding, breaking the recovery subsystem's byte-identical-results
    guarantee. *)

type xentry = { x_idx : int; x_state : Combine.state }

type xrepr =
  | X_two_stacks of {
      xfront : xentry list;  (** oldest first; cumulative suffix states *)
      xback : xentry list;  (** youngest first; raw states *)
      xback_acc : Combine.state option;
    }
  | X_subtractive of {
      xentries : xentry list;  (** oldest first; raw states *)
      xacc : Combine.state option;
    }

type export = {
  x_repr : xrepr;
  x_evicted : int;
  x_flips : int;
  x_merges : int;
}

val export : t -> export

val import : Aggregate.t -> export -> t
(** Raises [Invalid_argument] when the representation kind does not
    match {!Combine.invertible} for the aggregate (a snapshot from a
    different aggregate or a corrupted decode). *)
