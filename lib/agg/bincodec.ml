(* Binary encoders for aggregate state, shared by the snapshot codec
   ({!Fw_snap.Codec}, which re-exports them — its byte format is
   unchanged) and the out-of-core state store ({!Fw_spill.Store}),
   which serializes evicted per-key entries with exactly these
   encoders so a spilled state faults back in bit-identical. *)

module Bin = Fw_spill.Bin

let corrupt = Bin.corrupt

(* --- aggregate state ----------------------------------------------- *)

let w_state b st =
  match Combine.view st with
  | Combine.V_min m ->
      Bin.w_u8 b 0;
      Bin.w_float b m
  | Combine.V_max m ->
      Bin.w_u8 b 1;
      Bin.w_float b m
  | Combine.V_count n ->
      Bin.w_u8 b 2;
      Bin.w_i64 b n
  | Combine.V_sum s ->
      Bin.w_u8 b 3;
      Bin.w_float b s
  | Combine.V_avg { sum; count } ->
      Bin.w_u8 b 4;
      Bin.w_float b sum;
      Bin.w_i64 b count
  | Combine.V_stdev { count; mean; m2 } ->
      Bin.w_u8 b 5;
      Bin.w_i64 b count;
      Bin.w_float b mean;
      Bin.w_float b m2
  | Combine.V_median vs ->
      Bin.w_u8 b 6;
      Bin.w_list b Bin.w_float vs

let r_state r =
  let view =
    match Bin.r_u8 r with
    | 0 -> Combine.V_min (Bin.r_float r)
    | 1 -> Combine.V_max (Bin.r_float r)
    | 2 -> Combine.V_count (Bin.r_i64 r)
    | 3 -> Combine.V_sum (Bin.r_float r)
    | 4 ->
        let sum = Bin.r_float r in
        let count = Bin.r_i64 r in
        Combine.V_avg { sum; count }
    | 5 ->
        let count = Bin.r_i64 r in
        let mean = Bin.r_float r in
        let m2 = Bin.r_float r in
        Combine.V_stdev { count; mean; m2 }
    | 6 -> Combine.V_median (Bin.r_list r Bin.r_float)
    | tag -> corrupt "unknown aggregate state tag %d" tag
  in
  try Combine.of_view view
  with Invalid_argument m -> corrupt "invalid aggregate state: %s" m

(* --- sliding queue -------------------------------------------------- *)

let w_xentry b (e : Swag.xentry) =
  Bin.w_i64 b e.Swag.x_idx;
  w_state b e.Swag.x_state

let r_xentry r =
  let x_idx = Bin.r_i64 r in
  let x_state = r_state r in
  { Swag.x_idx; x_state }

let w_swag b (x : Swag.export) =
  (match x.Swag.x_repr with
  | Swag.X_two_stacks { xfront; xback; xback_acc } ->
      Bin.w_u8 b 0;
      Bin.w_list b w_xentry xfront;
      Bin.w_list b w_xentry xback;
      Bin.w_option b w_state xback_acc
  | Swag.X_subtractive { xentries; xacc } ->
      Bin.w_u8 b 1;
      Bin.w_list b w_xentry xentries;
      Bin.w_option b w_state xacc);
  Bin.w_i64 b x.Swag.x_evicted;
  Bin.w_i64 b x.Swag.x_flips;
  Bin.w_i64 b x.Swag.x_merges

let r_swag r =
  let x_repr =
    match Bin.r_u8 r with
    | 0 ->
        let xfront = Bin.r_list r r_xentry in
        let xback = Bin.r_list r r_xentry in
        let xback_acc = Bin.r_option r r_state in
        Swag.X_two_stacks { xfront; xback; xback_acc }
    | 1 ->
        let xentries = Bin.r_list r r_xentry in
        let xacc = Bin.r_option r r_state in
        Swag.X_subtractive { xentries; xacc }
    | tag -> corrupt "unknown sliding-queue representation tag %d" tag
  in
  let x_evicted = Bin.r_i64 r in
  let x_flips = Bin.r_i64 r in
  let x_merges = Bin.r_i64 r in
  { Swag.x_repr; x_evicted; x_flips; x_merges }

(* --- spill-store codecs --------------------------------------------- *)

(* State-kind tag bytes written into every spill record — one per
   spillable state family, so a misrouted record is rejected at
   fault-in.  Tags 2–4 (window pending maps, count-window trackers,
   open sessions) are claimed by {!Fw_engine.Stream_exec}'s private
   codecs. *)
let kind_combine = 0
let kind_swag = 1
let kind_win = 2
let kind_cwin = 3
let kind_session = 4

(* Resident-weight estimates, in bytes.  They drive eviction accounting
   only — never results — so cheap approximations of the boxed heap
   size are enough.  A median keeps its full value list; everything
   else is a small constant-size record. *)
let state_weight st =
  match Combine.view st with
  | Combine.V_median vs -> 48 + (24 * List.length vs)
  | Combine.V_min _ | Combine.V_max _ | Combine.V_count _ | Combine.V_sum _
  | Combine.V_avg _ | Combine.V_stdev _ ->
      56

let swag_weight q = 128 + (72 * Swag.length q)

let state_codec : Combine.state Fw_spill.Store.codec =
  {
    Fw_spill.Store.kind = kind_combine;
    enc = w_state;
    dec = r_state;
    weight = state_weight;
  }

let swag_codec agg : Swag.t Fw_spill.Store.codec =
  {
    Fw_spill.Store.kind = kind_swag;
    enc = (fun b q -> w_swag b (Swag.export q));
    dec = (fun r -> Swag.import agg (r_swag r));
    weight = swag_weight;
  }
