type entry = { idx : int; st : Combine.state }

type two_stacks = {
  mutable front : entry list;
      (* oldest first; each cell's [st] is the merge of its own raw
         state with every younger cell flipped along with it, so the
         head always carries the aggregate of the whole front *)
  mutable back : entry list;  (* youngest first; raw states *)
  mutable back_acc : Combine.state option;
}

type subtractive = {
  q : entry Queue.t;  (* oldest first; raw states *)
  mutable acc : Combine.state option;
}

type repr = Two_stacks of two_stacks | Subtractive of subtractive

type t = {
  mutable len : int;
  repr : repr;
  (* lifetime counters for the observability layer; plain increments *)
  mutable evicted : int;
  mutable flips : int;
  mutable merges : int;
}

let create agg =
  {
    len = 0;
    repr =
      (if Combine.invertible agg then
         Subtractive { q = Queue.create (); acc = None }
       else Two_stacks { front = []; back = []; back_acc = None });
    evicted = 0;
    flips = 0;
    merges = 0;
  }

let length t = t.len
let is_empty t = t.len = 0
let evicted t = t.evicted
let flips t = t.flips
let merges t = t.merges

let push t ~idx st =
  t.len <- t.len + 1;
  match t.repr with
  | Two_stacks ts ->
      ts.back <- { idx; st } :: ts.back;
      ts.back_acc <-
        Some
          (match ts.back_acc with
          | None -> st
          | Some acc ->
              t.merges <- t.merges + 1;
              Combine.merge acc st)
  | Subtractive s ->
      Queue.add { idx; st } s.q;
      s.acc <-
        Some
          (match s.acc with
          | None -> st
          | Some acc ->
              t.merges <- t.merges + 1;
              Combine.merge acc st)

(* Rebuild the front stack from the back stack: visit back entries
   youngest to oldest, prepending each cumulative cell, which leaves the
   oldest entry at the head carrying the whole aggregate.  Each entry is
   flipped at most once, so pushes and evictions stay O(1) amortized. *)
let flip t ts back =
  t.flips <- t.flips + 1;
  let rec go acc built = function
    | [] -> built
    | e :: rest ->
        let cum =
          match acc with
          | None -> e.st
          | Some a ->
              t.merges <- t.merges + 1;
              Combine.merge e.st a
        in
        go (Some cum) ({ idx = e.idx; st = cum } :: built) rest
  in
  ts.front <- go None [] back;
  ts.back <- [];
  ts.back_acc <- None

let evict_below t m =
  match t.repr with
  | Two_stacks ts ->
      let rec go () =
        if t.len > 0 then begin
          (match ts.front with [] -> flip t ts ts.back | _ -> ());
          match ts.front with
          | e :: rest when e.idx < m ->
              ts.front <- rest;
              t.len <- t.len - 1;
              t.evicted <- t.evicted + 1;
              go ()
          | _ -> ()
        end
      in
      go ()
  | Subtractive s ->
      let recompute () =
        Queue.fold
          (fun acc e ->
            Some
              (match acc with
              | None -> e.st
              | Some a ->
                  t.merges <- t.merges + 1;
                  Combine.merge a e.st))
          None s.q
      in
      let rec go () =
        match Queue.peek_opt s.q with
        | Some e when e.idx < m ->
            ignore (Queue.pop s.q);
            t.len <- t.len - 1;
            t.evicted <- t.evicted + 1;
            (s.acc <-
               (if Queue.is_empty s.q then None
                else
                  match s.acc with
                  | None -> None
                  | Some acc -> (
                      match Combine.inverse acc e.st with
                      | Some a -> Some a
                      | None -> recompute ())));
            go ()
        | Some _ | None -> ()
      in
      go ()

(* --- snapshot support ---------------------------------------------- *)

(* The export is the exact internal shape, cumulative front states
   included: re-pushing the entries into a fresh queue would regroup
   the pending merges and change float rounding, so recovery restores
   the two-stacks split verbatim to keep results byte-identical. *)
type xentry = { x_idx : int; x_state : Combine.state }

type xrepr =
  | X_two_stacks of {
      xfront : xentry list;
      xback : xentry list;
      xback_acc : Combine.state option;
    }
  | X_subtractive of { xentries : xentry list; xacc : Combine.state option }

type export = {
  x_repr : xrepr;
  x_evicted : int;
  x_flips : int;
  x_merges : int;
}

let export t =
  let entry e = { x_idx = e.idx; x_state = e.st } in
  let x_repr =
    match t.repr with
    | Two_stacks ts ->
        X_two_stacks
          {
            xfront = List.map entry ts.front;
            xback = List.map entry ts.back;
            xback_acc = ts.back_acc;
          }
    | Subtractive s ->
        X_subtractive
          {
            xentries = List.map entry (List.of_seq (Queue.to_seq s.q));
            xacc = s.acc;
          }
  in
  { x_repr; x_evicted = t.evicted; x_flips = t.flips; x_merges = t.merges }

let import agg x =
  let entry e = { idx = e.x_idx; st = e.x_state } in
  let len, repr =
    match (x.x_repr, Combine.invertible agg) with
    | X_two_stacks { xfront; xback; xback_acc }, false ->
        ( List.length xfront + List.length xback,
          Two_stacks
            {
              front = List.map entry xfront;
              back = List.map entry xback;
              back_acc = xback_acc;
            } )
    | X_subtractive { xentries; xacc }, true ->
        let q = Queue.create () in
        List.iter (fun e -> Queue.add (entry e) q) xentries;
        (List.length xentries, Subtractive { q; acc = xacc })
    | X_two_stacks _, true | X_subtractive _, false ->
        invalid_arg
          "Swag.import: representation does not match the aggregate's \
           invertibility"
  in
  {
    len;
    repr;
    evicted = x.x_evicted;
    flips = x.x_flips;
    merges = x.x_merges;
  }

let query t =
  match t.repr with
  | Subtractive s -> s.acc
  | Two_stacks ts -> (
      match (ts.front, ts.back_acc) with
      | [], acc -> acc
      | e :: _, None -> Some e.st
      | e :: _, Some acc -> Some (Combine.merge e.st acc))

(* Fused evict + query, the batched firing path's single entry point:
   exactly [evict_below] then [query], so every counter and every
   internal merge happens in the same order as the two separate
   calls — byte-identical states, one call per fired instance. *)
let slide t ~below =
  evict_below t below;
  query t
