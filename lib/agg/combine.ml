type state =
  | S_min of float
  | S_max of float
  | S_count of int
  | S_sum of float
  | S_avg of { sum : float; count : int }
  | S_stdev of { count : int; mean : float; m2 : float }
      (* Welford's running mean and sum of squared deviations; merged
         with Chan et al.'s pairwise update.  The textbook
         sum/sum-of-squares form cancels catastrophically when the mean
         dwarfs the deviations (values near 1e8 with variance ~1), so
         the state keeps the deviations directly. *)
  | S_median of float list  (* holistic: keeps every value *)

let identity (f : Aggregate.t) =
  match f with
  | Min -> S_min Float.infinity
  | Max -> S_max Float.neg_infinity
  | Count -> S_count 0
  | Sum -> S_sum 0.0
  | Avg -> S_avg { sum = 0.0; count = 0 }
  | Stdev -> S_stdev { count = 0; mean = 0.0; m2 = 0.0 }
  | Median -> S_median []

let of_value (f : Aggregate.t) v =
  match f with
  | Min -> S_min v
  | Max -> S_max v
  | Count -> S_count 1
  | Sum -> S_sum v
  | Avg -> S_avg { sum = v; count = 1 }
  | Stdev -> S_stdev { count = 1; mean = v; m2 = 0.0 }
  | Median -> S_median [ v ]

let add state v =
  match state with
  | S_min m -> S_min (Float.min m v)
  | S_max m -> S_max (Float.max m v)
  | S_count n -> S_count (n + 1)
  | S_sum s -> S_sum (s +. v)
  | S_avg { sum; count } -> S_avg { sum = sum +. v; count = count + 1 }
  | S_stdev { count; mean; m2 } ->
      let count = count + 1 in
      let delta = v -. mean in
      let mean = mean +. (delta /. float_of_int count) in
      S_stdev { count; mean; m2 = m2 +. (delta *. (v -. mean)) }
  | S_median vs -> S_median (v :: vs)

let merge a b =
  match (a, b) with
  | S_min x, S_min y -> S_min (Float.min x y)
  | S_max x, S_max y -> S_max (Float.max x y)
  | S_count x, S_count y -> S_count (x + y)
  | S_sum x, S_sum y -> S_sum (x +. y)
  | S_avg x, S_avg y ->
      S_avg { sum = x.sum +. y.sum; count = x.count + y.count }
  | S_stdev x, S_stdev y ->
      (* Chan, Golub & LeVeque's pairwise combination. *)
      if x.count = 0 then b
      else if y.count = 0 then a
      else
        let na = float_of_int x.count and nb = float_of_int y.count in
        let n = na +. nb in
        let delta = y.mean -. x.mean in
        S_stdev
          {
            count = x.count + y.count;
            mean = x.mean +. (delta *. nb /. n);
            m2 = x.m2 +. y.m2 +. (delta *. delta *. na *. nb /. n);
          }
  | S_median x, S_median y -> S_median (List.rev_append x y)
  | ( (S_min _ | S_max _ | S_count _ | S_sum _ | S_avg _ | S_stdev _
      | S_median _),
      _ ) ->
      invalid_arg "Combine.merge: mismatched aggregate states"

(* STDEV is deliberately absent even though {!inverse} succeeds on its
   states: undoing a merge computes M2 as a difference of nearly equal
   quantities, so a window whose true variance is 0 comes back as ~1e-13
   worth of residual — far outside the differential oracle's tolerance
   once square-rooted.  Sliding queues therefore treat STDEV like the
   non-invertible aggregates and re-merge exactly the in-window panes. *)
let invertible : Aggregate.t -> bool = function
  | Count | Sum | Avg -> true
  | Stdev | Min | Max | Median -> false

let inverse total part =
  match (total, part) with
  | S_count x, S_count y -> if x >= y then Some (S_count (x - y)) else None
  | S_sum x, S_sum y -> Some (S_sum (x -. y))
  | S_avg x, S_avg y ->
      if x.count >= y.count then
        Some (S_avg { sum = x.sum -. y.sum; count = x.count - y.count })
      else None
  | S_stdev x, S_stdev y ->
      if x.count < y.count then None
      else if y.count = 0 then Some total
      else if x.count = y.count then
        Some (S_stdev { count = 0; mean = 0.0; m2 = 0.0 })
      else
        (* Undo the Chan merge: with n = na + nb known, recover the mean
           and M2 of the removed-complement part a. *)
        let n = float_of_int x.count and nb = float_of_int y.count in
        let na = float_of_int (x.count - y.count) in
        let mean_a = ((n *. x.mean) -. (nb *. y.mean)) /. na in
        let delta = y.mean -. mean_a in
        let m2_a = x.m2 -. y.m2 -. (delta *. delta *. na *. nb /. n) in
        Some
          (S_stdev
             { count = x.count - y.count; mean = mean_a; m2 = Float.max 0.0 m2_a })
  | (S_min _ | S_max _ | S_median _), _ -> None
  | (S_count _ | S_sum _ | S_avg _ | S_stdev _), _ ->
      invalid_arg "Combine.inverse: mismatched aggregate states"

let finalize = function
  | S_min m | S_max m -> m
  | S_count n -> float_of_int n
  | S_sum s -> s
  | S_avg { sum; count } -> sum /. float_of_int count
  | S_stdev { count; m2; _ } ->
      if count = 0 then nan
      else sqrt (Float.max 0.0 (m2 /. float_of_int count))
  | S_median vs -> (
      let sorted = List.sort Float.compare vs in
      let n = List.length sorted in
      match n with
      | 0 -> nan
      | _ ->
          if n land 1 = 1 then List.nth sorted (n / 2)
          else
            let a = List.nth sorted ((n / 2) - 1)
            and b = List.nth sorted (n / 2) in
            (a +. b) /. 2.0)

let count_of = function
  | S_min _ | S_max _ | S_sum _ -> 1
  | S_count n -> n
  | S_avg { count; _ } | S_stdev { count; _ } -> count
  | S_median vs -> List.length vs

let aggregate_of : state -> Aggregate.t = function
  | S_min _ -> Min
  | S_max _ -> Max
  | S_count _ -> Count
  | S_sum _ -> Sum
  | S_avg _ -> Avg
  | S_stdev _ -> Stdev
  | S_median _ -> Median

(* The serializable view mirrors the state constructors one-for-one.
   [of_view] re-validates counts so a decoded snapshot can never smuggle
   a state that [add]/[merge] would have refused to build. *)
type view =
  | V_min of float
  | V_max of float
  | V_count of int
  | V_sum of float
  | V_avg of { sum : float; count : int }
  | V_stdev of { count : int; mean : float; m2 : float }
  | V_median of float list

let view = function
  | S_min m -> V_min m
  | S_max m -> V_max m
  | S_count n -> V_count n
  | S_sum s -> V_sum s
  | S_avg { sum; count } -> V_avg { sum; count }
  | S_stdev { count; mean; m2 } -> V_stdev { count; mean; m2 }
  | S_median vs -> V_median vs

let of_view v =
  let check_count what n =
    if n < 0 then
      invalid_arg (Printf.sprintf "Combine.of_view: negative %s count" what)
  in
  match v with
  | V_min m -> S_min m
  | V_max m -> S_max m
  | V_count n ->
      check_count "COUNT" n;
      S_count n
  | V_sum s -> S_sum s
  | V_avg { sum; count } ->
      check_count "AVG" count;
      S_avg { sum; count }
  | V_stdev { count; mean; m2 } ->
      check_count "STDEV" count;
      S_stdev { count; mean; m2 }
  | V_median vs -> S_median vs

let pp ppf s =
  Format.fprintf ppf "%a-state(%g)" Aggregate.pp (aggregate_of s)
    (finalize s)

let equal_result a b =
  if Float.is_nan a && Float.is_nan b then true
  else
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    Float.abs (a -. b) <= 1e-9 *. scale
