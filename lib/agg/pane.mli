(** A per-key pane buffer: the unit of pre-aggregation shared by the
    incremental streaming engine and the executable window slicing.

    One pane covers one slide-aligned (or slice-aligned) span of the
    stream and accumulates a {!Combine.state} per key.  Raw events fold
    in with {!add} in O(1); sealed panes are drained with {!iter} into
    per-key sliding queues ({!Swag}) or per-slice partial arrays
    ({!Fw_slicing.Exec}).  A pane only holds entries for keys that
    actually appeared, so empty keys cost nothing. *)

type t

val create : ?size_hint:int -> ?pool:Fw_spill.Pool.t -> Aggregate.t -> t
(** Without [pool], per-key states live in a plain hashtable (exact
    historical semantics).  With [pool], they live in a budgeted
    {!Fw_spill.Store}: cold keys may be evicted to disk and fault back
    in bit-identical on access — results are unaffected.  [size_hint]
    is kept for API stability. *)

val aggregate : t -> Aggregate.t

val add : t -> key:string -> float -> unit
(** Fold one raw value into the key's state ([of_value] on first
    sight, [Combine.add] afterwards). *)

val add_run : t -> keys:string array -> values:float array ->
  sel:int array -> lo:int -> hi:int -> unit
(** Batched {!add}: fold events [sel.(lo .. hi-1)] of the parallel
    [keys]/[values] columns, in selection order.  Exactly equivalent to
    the per-event loop — same fold order, same final lifetime counter
    ([adds] grows by [hi - lo]) — with the per-call overhead amortized
    across the run.  The columnar hot path of
    {!Fw_engine.Stream_exec}'s [feed_batch]. *)

val merge : t -> key:string -> Combine.state -> unit
(** Fold a whole sub-aggregate state into the key's slot (used when a
    pane accumulates upstream sub-aggregates rather than raw values). *)

val find : t -> string -> Combine.state option
val iter : (string -> Combine.state -> unit) -> t -> unit
val fold : (string -> Combine.state -> 'a -> 'a) -> t -> 'a -> 'a
val size : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Empty the pane for reuse (the engine recycles one open pane). *)

(** {2 Introspection}

    Cumulative lifetime counters (they survive {!clear}) for the
    observability layer: how many raw values and sub-aggregate states
    this buffer absorbed over its life. *)

val adds : t -> int
(** {!add} calls so far. *)

val merges : t -> int
(** {!merge} calls so far. *)

(** {2 Snapshot support} *)

type export = {
  x_entries : (string * Combine.state) list;  (** sorted by key *)
  x_adds : int;
  x_merges : int;
}

val export : t -> export
(** Deterministic (key-sorted) capture of the pane's contents and
    lifetime counters, for the checkpoint codec.  On a pooled pane this
    faults every spilled key back in, so the export is self-contained
    (snapshots never reference spill files). *)

val import : ?size_hint:int -> ?pool:Fw_spill.Pool.t -> Aggregate.t -> export -> t
