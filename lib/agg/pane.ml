type t = {
  agg : Aggregate.t;
  tbl : (string, Combine.state) Hashtbl.t;
  (* lifetime counters (not reset by [clear]) for observability *)
  mutable adds : int;
  mutable merges : int;
}

let create ?(size_hint = 16) agg =
  { agg; tbl = Hashtbl.create size_hint; adds = 0; merges = 0 }

let aggregate t = t.agg

let add t ~key v =
  t.adds <- t.adds + 1;
  match Hashtbl.find_opt t.tbl key with
  | None -> Hashtbl.replace t.tbl key (Combine.of_value t.agg v)
  | Some st -> Hashtbl.replace t.tbl key (Combine.add st v)

(* Columnar entry point: fold a run of events given as parallel key /
   value columns and a selection-index window.  Element order and
   per-element hashtable operations are identical to repeated [add]
   calls, so the result — and the lifetime counter — is bit-for-bit
   the same; only the per-call overhead is amortized. *)
let add_run t ~keys ~values ~sel ~lo ~hi =
  for i = lo to hi - 1 do
    let j = sel.(i) in
    let key : string = keys.(j) in
    (match Hashtbl.find_opt t.tbl key with
    | None -> Hashtbl.replace t.tbl key (Combine.of_value t.agg values.(j))
    | Some st -> Hashtbl.replace t.tbl key (Combine.add st values.(j)));
  done;
  t.adds <- t.adds + (hi - lo)

let merge t ~key state =
  t.merges <- t.merges + 1;
  match Hashtbl.find_opt t.tbl key with
  | None -> Hashtbl.replace t.tbl key state
  | Some st -> Hashtbl.replace t.tbl key (Combine.merge st state)

let find t key = Hashtbl.find_opt t.tbl key
let iter f t = Hashtbl.iter f t.tbl
let fold f t acc = Hashtbl.fold f t.tbl acc
let size t = Hashtbl.length t.tbl
let is_empty t = Hashtbl.length t.tbl = 0
let clear t = Hashtbl.reset t.tbl
let adds t = t.adds
let merges t = t.merges

(* --- snapshot support ---------------------------------------------- *)

type export = {
  x_entries : (string * Combine.state) list;  (* sorted by key *)
  x_adds : int;
  x_merges : int;
}

let export t =
  {
    x_entries =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k st acc -> (k, st) :: acc) t.tbl []);
    x_adds = t.adds;
    x_merges = t.merges;
  }

let import ?(size_hint = 16) agg x =
  let t = create ~size_hint agg in
  List.iter (fun (k, st) -> Hashtbl.replace t.tbl k st) x.x_entries;
  t.adds <- x.x_adds;
  t.merges <- x.x_merges;
  t
