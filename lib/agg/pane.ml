module Store = Fw_spill.Store

type t = {
  agg : Aggregate.t;
  store : Combine.state Store.t;
  (* lifetime counters (not reset by [clear]) for observability *)
  mutable adds : int;
  mutable merges : int;
}

(* [size_hint] predates the store backend and is kept for API
   stability; the store sizes itself. *)
let create ?size_hint:_ ?pool agg =
  { agg; store = Store.create ?pool ~name:"pane" Bincodec.state_codec;
    adds = 0; merges = 0 }

let aggregate t = t.agg

let add t ~key v =
  t.adds <- t.adds + 1;
  Store.update t.store key (function
    | None -> Combine.of_value t.agg v
    | Some st -> Combine.add st v)

(* Columnar entry point: fold a run of events given as parallel key /
   value columns and a selection-index window.  Element order and
   per-element store operations are identical to repeated [add] calls,
   so the result — and the lifetime counter — is bit-for-bit the same;
   only the per-call overhead is amortized. *)
let add_run t ~keys ~values ~sel ~lo ~hi =
  for i = lo to hi - 1 do
    let j = sel.(i) in
    let key : string = keys.(j) in
    let v = values.(j) in
    Store.update t.store key (function
      | None -> Combine.of_value t.agg v
      | Some st -> Combine.add st v)
  done;
  t.adds <- t.adds + (hi - lo)

let merge t ~key state =
  t.merges <- t.merges + 1;
  Store.update t.store key (function
    | None -> state
    | Some st -> Combine.merge st state)

let find t key = Store.find t.store key
let iter f t = Store.iter f t.store
let fold f t acc = Store.fold f t.store acc
let size t = Store.length t.store
let is_empty t = Store.is_empty t.store
let clear t = Store.clear t.store
let adds t = t.adds
let merges t = t.merges

(* --- snapshot support ---------------------------------------------- *)

type export = {
  x_entries : (string * Combine.state) list;  (* sorted by key *)
  x_adds : int;
  x_merges : int;
}

(* Folding a budgeted store faults every spilled entry back in, so the
   export is self-contained regardless of what was on disk. *)
let export t =
  {
    x_entries =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Store.fold (fun k st acc -> (k, st) :: acc) t.store []);
    x_adds = t.adds;
    x_merges = t.merges;
  }

let import ?size_hint ?pool agg x =
  let t = create ?size_hint ?pool agg in
  List.iter (fun (k, st) -> Store.set t.store k st) x.x_entries;
  t.adds <- x.x_adds;
  t.merges <- x.x_merges;
  t
