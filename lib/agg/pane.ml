type t = {
  agg : Aggregate.t;
  tbl : (string, Combine.state) Hashtbl.t;
}

let create ?(size_hint = 16) agg = { agg; tbl = Hashtbl.create size_hint }

let aggregate t = t.agg

let add t ~key v =
  match Hashtbl.find_opt t.tbl key with
  | None -> Hashtbl.replace t.tbl key (Combine.of_value t.agg v)
  | Some st -> Hashtbl.replace t.tbl key (Combine.add st v)

let merge t ~key state =
  match Hashtbl.find_opt t.tbl key with
  | None -> Hashtbl.replace t.tbl key state
  | Some st -> Hashtbl.replace t.tbl key (Combine.merge st state)

let find t key = Hashtbl.find_opt t.tbl key
let iter f t = Hashtbl.iter f t.tbl
let fold f t acc = Hashtbl.fold f t.tbl acc
let size t = Hashtbl.length t.tbl
let is_empty t = Hashtbl.length t.tbl = 0
let clear t = Hashtbl.reset t.tbl
