(** Binary encoders for aggregate state ({!Combine} views, {!Swag}
    exports), shared by the snapshot codec ({!Fw_snap.Codec} re-exports
    them; byte format unchanged) and the out-of-core state store —
    evicted entries are serialized with exactly these encoders, so a
    spilled state faults back in bit-identical (floats as IEEE bit
    patterns).

    Raises {!Fw_spill.Bin.Corrupt} on malformed input. *)

val w_state : Buffer.t -> Combine.state -> unit
val r_state : Fw_spill.Bin.reader -> Combine.state

val w_xentry : Buffer.t -> Swag.xentry -> unit
val r_xentry : Fw_spill.Bin.reader -> Swag.xentry

val w_swag : Buffer.t -> Swag.export -> unit
val r_swag : Fw_spill.Bin.reader -> Swag.export

(** {2 Spill-store codecs}

    State-kind tag bytes — one per spillable state family; fault-in
    rejects a record whose tag disagrees with the store's codec.  Tags
    2–4 are claimed by the engine's private codecs (window pending
    maps, count-window trackers, open sessions). *)

val kind_combine : int
val kind_swag : int
val kind_win : int
val kind_cwin : int
val kind_session : int

val state_weight : Combine.state -> int
val swag_weight : Swag.t -> int

val state_codec : Combine.state Fw_spill.Store.codec
val swag_codec : Aggregate.t -> Swag.t Fw_spill.Store.codec
