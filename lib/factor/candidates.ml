open Fw_window
module Arith = Fw_util.Arith

(* Factor candidates live in the same domain as the windows they will
   feed: coverage is only defined within a domain, so a candidate in
   any other domain could never relate to [downstream].  Callers hand
   us a domain-homogeneous group (Algorithm 2 splits its insertion
   points per domain). *)
let downstream_domain downstream =
  match downstream with
  | w :: _ -> Option.value (Window.hop_domain w) ~default:Window.Time
  | [] -> Window.Time

let generate env ~semantics ~exclude ~target ~downstream =
  match downstream with
  | [] -> []
  | _ ->
      let domain = downstream_domain downstream in
      let slides = List.map Window.slide downstream in
      let ranges = List.map Window.range downstream in
      let s_d = Arith.gcd_list slides in
      let r_min = List.fold_left min (List.hd ranges) ranges in
      let s_w = Benefit.target_slide target in
      let eligible_slides =
        List.filter (fun s -> s mod s_w = 0) (Arith.divisors s_d)
      in
      let candidates_for_slide s_f =
        let n_ranges = r_min / s_f in
        List.init n_ranges (fun i ->
            Window.hop ~domain ~range:((i + 1) * s_f) ~slide:s_f)
      in
      let all = List.concat_map candidates_for_slide eligible_slides in
      let valid w_f =
        (not (List.exists (Window.equal w_f) exclude))
        && Benefit.covers semantics target w_f
        && List.for_all (fun w -> Coverage.related semantics w w_f) downstream
      in
      let scored =
        List.filter_map
          (fun w_f ->
            if valid w_f then
              let d = Benefit.delta env ~semantics ~target ~downstream
                        ~factor:w_f in
              if d <= 0 then Some (w_f, d) else None
            else None)
          all
      in
      List.sort
        (fun (w1, d1) (w2, d2) ->
          match Int.compare d1 d2 with
          | 0 -> Window.compare w1 w2
          | c -> c)
        scored

let best env ~semantics ~exclude ~target ~downstream =
  match generate env ~semantics ~exclude ~target ~downstream with
  | (w, d) :: _ when d < 0 -> Some w
  | _ -> None

(* --- Subset-aware search (see the interface for the rationale). --- *)

type scored = { factor : Window.t; group : Window.t list; delta : int }

let dedup_sorted xs = List.sort_uniq Int.compare xs

(* Candidate windows that could cover at least one downstream window
   under [semantics] while being covered by the target. *)
let enumerate_candidates ~semantics ~target ~downstream =
  let s_w = Benefit.target_slide target in
  let domain = downstream_domain downstream in
  match semantics with
  | Coverage.Partitioned_by ->
      (* Tumbling candidates (Theorem 4); the range must divide some
         downstream slide (alignment then gives range divisibility). *)
      let ranges =
        dedup_sorted
          (List.concat_map
             (fun w -> Fw_util.Arith.divisors (Window.slide w))
             downstream)
      in
      List.filter_map
        (fun r_f ->
          if r_f mod s_w = 0 then
            Some (Window.hop ~domain ~range:r_f ~slide:r_f)
          else None)
        ranges
  | Coverage.Covered_by ->
      let slides =
        dedup_sorted
          (List.concat_map
             (fun w -> Fw_util.Arith.divisors (Window.slide w))
             downstream)
      in
      let slides = List.filter (fun s -> s mod s_w = 0) slides in
      let r_max = List.fold_left (fun m w -> max m (Window.range w)) 0 downstream in
      List.concat_map
        (fun s_f ->
          List.init (r_max / s_f) (fun i ->
              Window.hop ~domain ~range:((i + 1) * s_f) ~slide:s_f))
        slides

let score_candidate env ~semantics ~target ~downstream factor =
  match
    List.filter (fun w -> Coverage.related semantics w factor) downstream
  with
  | [] -> None
  | group ->
      let delta = Benefit.delta env ~semantics ~target ~downstream:group ~factor in
      if delta < 0 then Some { factor; group; delta } else None

let best_grouped env ~semantics ~exclude ~target ~downstream =
  if downstream = [] then None
  else
    let candidates =
      enumerate_candidates ~semantics ~target ~downstream
      |> List.filter (fun w_f ->
             (not (List.exists (Window.equal w_f) exclude))
             && Benefit.covers semantics target w_f)
    in
    let better a b =
      (* smaller delta wins; ties: larger group, then smaller window *)
      match Int.compare a.delta b.delta with
      | 0 -> (
          match
            Int.compare (List.length b.group) (List.length a.group)
          with
          | 0 -> Window.compare a.factor b.factor < 0
          | c -> c < 0)
      | c -> c < 0
    in
    List.fold_left
      (fun best w_f ->
        match score_candidate env ~semantics ~target ~downstream w_f with
        | None -> best
        | Some s -> (
            match best with
            | None -> Some s
            | Some b -> if better s b then Some s else best))
      None candidates

let plan_factors env ~semantics ~exclude ~target ~downstream =
  let rec go exclude downstream acc =
    match best_grouped env ~semantics ~exclude ~target ~downstream with
    | None -> List.rev acc
    | Some s ->
        let remaining =
          List.filter
            (fun w -> not (List.exists (Window.equal w) s.group))
            downstream
        in
        go (s.factor :: exclude) remaining (s :: acc)
  in
  go exclude downstream []
