open Fw_window
module Cost_model = Fw_wcg.Cost_model
module Arith = Fw_util.Arith

let require_tumbling what w =
  if not (Window.is_tumbling w) then
    invalid_arg
      (Format.asprintf "Partitioned.%s: %a is not a tumbling window" what
         Window.pp w)

let require_tumbling_target what = function
  | Benefit.Stream -> ()
  | Benefit.At w -> require_tumbling what w

let helps env ~target ~downstream ~factor =
  require_tumbling "helps" factor;
  require_tumbling_target "helps" target;
  match downstream with
  | [] -> invalid_arg "Partitioned.helps: empty downstream set"
  | _ :: _ :: _ -> true (* K >= 2 *)
  | [ w1 ] ->
      let k1 = Window.k_ratio w1 in
      if k1 = 1 then false
      else
        let n1 = Cost_model.recurrence_count env w1 in
        let m1 = Cost_model.multiplicity env w1 in
        if k1 >= 3 && m1 >= 3 then true
        else if n1 = m1 then false (* lambda = 1 *)
        else
          (* r_f / r_W >= lambda / (lambda - 1) with lambda = n1/m1,
             i.e. r_f * (n1 - m1) >= r_W * n1. *)
          let r_f = Window.range factor
          and r_w = Benefit.target_range target in
          Arith.mul r_f (n1 - m1) >= Arith.mul r_w n1

(* Exact cost of the Figure-9 configuration that uses [w_f]; the
   target's own cost is common to both sides and omitted. *)
let config_cost env ~target ~downstream w_f =
  List.fold_left
    (fun acc w -> Arith.add acc (Cost_model.edge_cost env ~covered:w ~by:w_f))
    (Benefit.target_cost env target w_f)
    downstream

let theorem9_le env ~target ~downstream w_f w_f' =
  config_cost env ~target ~downstream w_f
  <= config_cost env ~target ~downstream w_f'

let candidate_ranges ~target ~downstream =
  match downstream with
  | [] -> []
  | _ ->
      let d = Arith.gcd_list (List.map Window.range downstream) in
      let r_w = Benefit.target_range target in
      if d = r_w || d mod r_w <> 0 then []
      else
        List.filter
          (fun r_f -> r_f mod r_w = 0 && r_f <> r_w)
          (Arith.divisors d)

let pick_best env ~exclude ~target ~downstream =
  let covered_by_target w_f =
    match target with
    | Benefit.Stream -> true
    | Benefit.At w -> Coverage.strictly_partitioned_by w_f w
  in
  let valid w_f =
    (not (List.exists (Window.equal w_f) exclude))
    && covered_by_target w_f
    && List.for_all
         (fun w -> Coverage.strictly_partitioned_by w w_f)
         downstream
  in
  let domain =
    match downstream with
    | w :: _ -> Option.value (Window.hop_domain w) ~default:Window.Time
    | [] -> Window.Time
  in
  let candidates =
    candidate_ranges ~target ~downstream
    |> List.map (fun r -> Window.hop ~domain ~range:r ~slide:r)
    |> List.filter valid
    |> List.filter (fun w_f -> helps env ~target ~downstream ~factor:w_f)
  in
  (* Dominance pruning (Algorithm 4 lines 11-13): drop a candidate if
     another candidate is covered by it — i.e. keep maximal ranges
     (Example 8 keeps W<10,10> over W<5,5> and W<2,2>). *)
  let dominated w_f =
    List.exists
      (fun w_f' ->
        (not (Window.equal w_f w_f'))
        && Coverage.strictly_covered_by w_f' w_f)
      candidates
  in
  let survivors = List.filter (fun w_f -> not (dominated w_f)) candidates in
  let best =
    match survivors with
    | [] -> None
    | first :: rest ->
        Some
          (List.fold_left
             (fun best w_f ->
               if theorem9_le env ~target ~downstream w_f best then w_f
               else best)
             first rest)
  in
  match best with
  | Some w_f
    when Benefit.delta env ~semantics:Coverage.Partitioned_by ~target
           ~downstream ~factor:w_f
         < 0 ->
      Some w_f
  | Some _ | None -> None
