open Fw_window
module Graph = Fw_wcg.Graph
module Cost_model = Fw_wcg.Cost_model
module Algorithm1 = Fw_wcg.Algorithm1
module Arith = Fw_util.Arith

let find_best env semantics ~exclude ~target ~downstream =
  match semantics with
  | Coverage.Partitioned_by ->
      Partitioned.pick_best env ~exclude ~target ~downstream
  | Coverage.Covered_by ->
      Candidates.best env ~semantics ~exclude ~target ~downstream

(* Insertion points of the augmented WCG: the virtual root S (downstream
   = the WCG's roots) plus every window with outgoing edges.  Mixed
   window sets get one Stream point per hop domain — a factor window
   can only serve downstream windows of its own domain, so the root
   set is split before candidate generation (At-w points are
   domain-homogeneous by construction: WCG edges never cross
   domains). *)
let insertion_points g =
  let root_points =
    let roots = Graph.roots g in
    let in_domain d =
      List.filter (fun w -> Window.hop_domain w = Some d) roots
    in
    List.filter_map
      (fun d ->
        match in_domain d with
        | [] -> None
        | group -> Some (Benefit.Stream, group))
      [ Window.Time; Window.Count ]
  in
  root_points
  @ List.filter_map
      (fun w ->
        match Graph.out_neighbors g w with
        | [] -> None
        | downstream -> Some (Benefit.At w, downstream))
      (Graph.windows g)

let splice ~dense g target factor ~downstream =
  if Graph.mem g factor then g
  else
    let g = Graph.add_node g factor Graph.Factor in
    if dense then Graph.connect_coverage g factor
    else
      let sem = Graph.semantics g in
      let g =
        match target with
        | Benefit.Stream -> g
        | Benefit.At w -> Graph.add_edge g ~src:w ~dst:factor
      in
      (* Figure-9 edges toward the insertion point's downstream windows
         (captured before any splice at this point, so several factor
         windows serving disjoint groups all reach their windows). *)
      List.fold_left
        (fun g w ->
          if Coverage.related sem w factor then
            Graph.add_edge g ~src:factor ~dst:w
          else g)
        g downstream

(* Remove factor windows that feed nobody in the optimized forest; the
   removal can cascade along factor-only chains. *)
let prune_useless (result : Algorithm1.result) =
  let rec go (result : Algorithm1.result) =
    let useless =
      List.filter
        (fun w -> Graph.out_neighbors result.graph w = [])
        (Graph.factor_windows result.graph)
    in
    match useless with
    | [] -> result
    | _ ->
        let graph =
          List.fold_left Graph.remove_node result.graph useless
        in
        let assignments =
          List.fold_left
            (fun m w -> Window.Map.remove w m)
            result.assignments useless
        in
        let total =
          Window.Map.fold
            (fun _ { Algorithm1.cost; _ } acc -> Arith.add acc cost)
            assignments 0
        in
        go { result with graph; assignments; total }
  in
  go result

let run ?eta ?(dense_factor_edges = false) ?(strict_figure9 = false) semantics
    ws =
  let ws = Window.dedup ws in
  let env = Cost_model.make_env ?eta ws in
  let g = Graph.of_windows semantics ws in
  let factors_for g target downstream =
    let exclude = Graph.windows g in
    if strict_figure9 then
      Option.to_list (find_best env semantics ~exclude ~target ~downstream)
    else
      List.map
        (fun s -> s.Candidates.factor)
        (Candidates.plan_factors env ~semantics ~exclude ~target ~downstream)
  in
  let expanded =
    List.fold_left
      (fun g (target, downstream) ->
        List.fold_left
          (fun g factor ->
            splice ~dense:dense_factor_edges g target factor ~downstream)
          g
          (factors_for g target downstream))
      g (insertion_points g)
  in
  prune_useless (Algorithm1.run_graph env expanded)

let best_of ?eta semantics ws =
  let a1 = Algorithm1.run ?eta semantics ws in
  let a2 = run ?eta semantics ws in
  if a2.Algorithm1.total <= a1.Algorithm1.total then a2 else a1

let for_aggregate ?eta f ws =
  Option.map (fun sem -> best_of ?eta sem ws) (Fw_agg.Aggregate.semantics f)
