(* Keyed state store with a pluggable backend.

   [Resident] (no pool) is today's hashtable semantics: every operation
   is a plain [Hashtbl] call behind one constructor match — zero
   overhead, bit-identical behavior.

   [Budgeted] (a {!Pool}) keeps the same map contract but is allowed to
   evict cold entries to an append-only spill file ({!File}) when the
   pool is over budget, faulting them back in lazily on access.
   Eviction is clock / second-chance: entries live in a FIFO of
   candidates; a popped entry that was touched since it was queued gets
   its hot bit cleared and a second trip, a pinned entry rotates
   untouched, a cold one is serialized and dropped from memory.

   Correctness contract (what makes the budgeted backend invisible to
   the differential fuzzer):

   - The store never decides {e values}: eviction serializes exactly
     the bytes the codec produces and fault-in decodes exactly them
     back ({!Bin} floats are IEEE bit patterns), so a faulted entry is
     bit-identical to the evicted one — fold order inside an entry is
     whatever the engine did, untouched.
   - A value the engine is currently mutating is {e pinned}
     ({!pinned}, and the current entry during {!iter}/{!fold}): pinned
     entries are never evicted, so in-place mutation cannot race a
     serialization.  The pool's budget is allowed to overshoot by the
     pinned slack (bounded by plan depth × largest entry).
   - Values obtained from {!find} must be treated as read-only unless
     followed by {!set} — the engine's firing paths extract, then
     store, then forward.

   A corrupt or truncated spill record surfaces at fault-in as
   {!File.Fault} with the store name, key and reason — never as a
   silently wrong state (the record carries a CRC, the spill kind byte,
   the codec's state-kind tag and the key, all verified). *)

type 'a codec = {
  kind : int;  (** state-kind tag byte stored in every record *)
  enc : Buffer.t -> 'a -> unit;
  dec : Bin.reader -> 'a;
  weight : 'a -> int;  (** resident-bytes estimate, for accounting only *)
}

type 'a slot = Live of 'a | Spilled of { off : int; len : int }

type 'a entry = {
  e_key : string;
  mutable e_slot : 'a slot;
  mutable e_weight : int;  (* accounted weight while Live *)
  mutable e_hot : bool;  (* second-chance bit *)
  mutable e_pins : int;
  mutable e_dead : bool;  (* removed; stale clock-queue reference *)
}

type 'a budgeted = {
  pool : Pool.t;
  codec : 'a codec;
  name : string;
  tbl : (string, 'a entry) Hashtbl.t;
  clock : 'a entry Queue.t;  (* eviction candidates, FIFO + second chance *)
  mutable file : File.t option;  (* opened lazily, on first eviction *)
}

type 'a t = R of (string, 'a) Hashtbl.t | B of 'a budgeted

(* Compact when the file passes 64 KiB with over half its bytes
   garbage. *)
let compact_min = 1 lsl 16

let file_of b =
  match b.file with
  | Some f -> f
  | None ->
      let f = File.create (Pool.fresh_path b.pool ~name:b.name) in
      b.file <- Some f;
      f

let spill_fault b key fmt =
  Printf.ksprintf
    (fun s ->
      raise
        (File.Fault (Printf.sprintf "store %s, key %S: %s" b.name key s)))
    fmt

(* --- compaction ------------------------------------------------------ *)

let maybe_compact b =
  match b.file with
  | Some f when File.size f >= compact_min && 2 * File.garbage_bytes f > File.size f
    ->
      let old_size = File.size f in
      if File.live_bytes f = 0 then begin
        File.truncate f;
        Pool.set_disk b.pool (-old_size);
        Pool.record_compaction b.pool ~reclaimed:old_size
      end
      else begin
        (* Rewrite live records into a fresh file; a record that cannot
           be read back is live engine state, so this fails loudly
           rather than dropping it. *)
        let nf = File.create (Pool.fresh_path b.pool ~name:b.name) in
        Hashtbl.iter
          (fun _ e ->
            match e.e_slot with
            | Spilled { off; len } when not e.e_dead ->
                let kind, bytes = File.read f ~off ~len ~key:e.e_key in
                let off', len' = File.append nf ~kind ~key:e.e_key bytes in
                e.e_slot <- Spilled { off = off'; len = len' }
            | Spilled _ | Live _ -> ())
          b.tbl;
        File.remove f;
        b.file <- Some nf;
        Pool.set_disk b.pool (File.size nf - old_size);
        Pool.record_compaction b.pool ~reclaimed:(old_size - File.size nf)
      end
  | Some _ | None -> ()

(* --- eviction (called by the pool's rebalance loop) ------------------ *)

let evict_entry b e v =
  let bytes =
    let buf = Buffer.create (max 64 e.e_weight) in
    b.codec.enc buf v;
    Buffer.contents buf
  in
  let f = file_of b in
  let before = File.size f in
  let off, len = File.append f ~kind:b.codec.kind ~key:e.e_key bytes in
  Pool.set_disk b.pool (File.size f - before);
  e.e_slot <- Spilled { off; len };
  let freed = e.e_weight in
  Pool.shrink b.pool freed;
  Pool.entry_dropped b.pool;
  Pool.record_eviction b.pool ~bytes:freed;
  freed

(* Shed one cold entry; returns the resident bytes freed (0 when every
   candidate is pinned, hot-rotated to exhaustion, or the queue is
   empty).  Dead and already-spilled queue references are dropped for
   free along the way. *)
let evict_one b =
  let rec go rotations =
    if Queue.is_empty b.clock then 0
    else
      let e = Queue.pop b.clock in
      if e.e_dead then go rotations
      else
        match e.e_slot with
        | Spilled _ -> go rotations
        | Live v ->
            if e.e_pins > 0 then begin
              Queue.push e b.clock;
              if rotations <= 0 then 0 else go (rotations - 1)
            end
            else if e.e_hot then begin
              e.e_hot <- false;
              Queue.push e b.clock;
              if rotations <= 0 then 0 else go (rotations - 1)
            end
            else evict_entry b e v
  in
  go (Queue.length b.clock)

let close_backend b ~remove =
  (match b.file with
  | Some f -> if remove then File.remove f else File.close f
  | None -> ());
  b.file <- None

(* --- construction ---------------------------------------------------- *)

let create ?pool ~name codec =
  match pool with
  | None -> R (Hashtbl.create 16)
  | Some pool ->
      let b =
        {
          pool;
          codec;
          name;
          tbl = Hashtbl.create 16;
          clock = Queue.create ();
          file = None;
        }
      in
      ignore
        (Pool.register pool
           ~evict:(fun () -> evict_one b)
           ~close:(fun ~remove -> close_backend b ~remove));
      B b

(* --- fault-in -------------------------------------------------------- *)

let live_value b e =
  match e.e_slot with
  | Live v -> v
  | Spilled { off; len } ->
      let t0 = Fw_obs.Clock.now_ns () in
      let f =
        match b.file with
        | Some f -> f
        | None -> spill_fault b e.e_key "spilled entry but no spill file"
      in
      let kind, bytes =
        try File.read f ~off ~len ~key:e.e_key
        with File.Fault m -> spill_fault b e.e_key "%s" m
      in
      if kind <> b.codec.kind then
        spill_fault b e.e_key "state kind %d where %d was expected" kind
          b.codec.kind;
      let r = Bin.reader bytes in
      let v =
        try b.codec.dec r
        with Bin.Corrupt m -> spill_fault b e.e_key "undecodable state: %s" m
      in
      if Bin.remaining r <> 0 then
        spill_fault b e.e_key "trailing bytes after state (%d)"
          (Bin.remaining r);
      File.release f len;
      e.e_slot <- Live v;
      e.e_weight <- b.codec.weight v;
      Pool.grow b.pool e.e_weight;
      Pool.entry_added b.pool;
      Pool.note_entry_weight b.pool e.e_weight;
      Queue.push e b.clock;
      Pool.record_fault b.pool ~ns:(Fw_obs.Clock.elapsed_ns ~since:t0);
      maybe_compact b;
      v

(* Re-account an entry whose value may have changed size under
   mutation. *)
let reweigh b e v =
  let w = b.codec.weight v in
  if w <> e.e_weight then begin
    if w > e.e_weight then Pool.grow b.pool (w - e.e_weight)
    else Pool.shrink b.pool (e.e_weight - w);
    e.e_weight <- w;
    Pool.note_entry_weight b.pool w
  end

let add_entry b key v =
  let e =
    {
      e_key = key;
      e_slot = Live v;
      e_weight = b.codec.weight v;
      e_hot = true;
      e_pins = 0;
      e_dead = false;
    }
  in
  Hashtbl.replace b.tbl key e;
  Queue.push e b.clock;
  Pool.grow b.pool e.e_weight;
  Pool.entry_added b.pool;
  Pool.note_entry_weight b.pool e.e_weight;
  e

(* --- map operations -------------------------------------------------- *)

let length = function R tbl -> Hashtbl.length tbl | B b -> Hashtbl.length b.tbl
let is_empty t = length t = 0

let find t key =
  match t with
  | R tbl -> Hashtbl.find_opt tbl key
  | B b -> (
      match Hashtbl.find_opt b.tbl key with
      | None -> None
      | Some e ->
          let v = live_value b e in
          e.e_hot <- true;
          Some v)

let set t key v =
  match t with
  | R tbl -> Hashtbl.replace tbl key v
  | B b ->
      (match Hashtbl.find_opt b.tbl key with
      | None -> ignore (add_entry b key v)
      | Some e ->
          (match e.e_slot with
          | Live _ -> reweigh b e v
          | Spilled { len; _ } ->
              (* the on-disk copy is superseded *)
              (match b.file with Some f -> File.release f len | None -> ());
              e.e_weight <- b.codec.weight v;
              Pool.grow b.pool e.e_weight;
              Pool.entry_added b.pool;
              Pool.note_entry_weight b.pool e.e_weight;
              Queue.push e b.clock);
          e.e_slot <- Live v;
          e.e_hot <- true);
      Pool.rebalance b.pool;
      maybe_compact b

let remove t key =
  match t with
  | R tbl -> Hashtbl.remove tbl key
  | B b -> (
      match Hashtbl.find_opt b.tbl key with
      | None -> ()
      | Some e ->
          (match e.e_slot with
          | Live _ ->
              Pool.shrink b.pool e.e_weight;
              Pool.entry_dropped b.pool
          | Spilled { len; _ } -> (
              match b.file with
              | Some f ->
                  File.release f len;
                  maybe_compact b
              | None -> ()));
          e.e_dead <- true;
          Hashtbl.remove b.tbl key)

(* [Hashtbl.find_opt]-then-[replace] in one operation — the engine's
   dominant mutation idiom.  [f] must not perform nested store
   operations (use {!pinned} when it must). *)
let update t key f =
  match t with
  | R tbl -> Hashtbl.replace tbl key (f (Hashtbl.find_opt tbl key))
  | B b ->
      (match Hashtbl.find_opt b.tbl key with
      | Some e ->
          let v = f (Some (live_value b e)) in
          e.e_slot <- Live v;
          e.e_hot <- true;
          reweigh b e v
      | None -> ignore (add_entry b key (f None)));
      Pool.rebalance b.pool

(* Find-or-create, pin for the duration of [f] — [f] may mutate the
   value in place and perform arbitrary nested store operations
   (downstream delivery): the pinned entry cannot be evicted out from
   under it. *)
let pinned t key ~init f =
  match t with
  | R tbl ->
      let v =
        match Hashtbl.find_opt tbl key with
        | Some v -> v
        | None ->
            let v = init () in
            Hashtbl.replace tbl key v;
            v
      in
      f v
  | B b ->
      let e =
        match Hashtbl.find_opt b.tbl key with
        | Some e ->
            ignore (live_value b e);
            e
        | None -> add_entry b key (init ())
      in
      let v = match e.e_slot with Live v -> v | Spilled _ -> assert false in
      e.e_pins <- e.e_pins + 1;
      Fun.protect
        ~finally:(fun () ->
          e.e_pins <- e.e_pins - 1;
          e.e_hot <- true;
          reweigh b e v;
          Pool.rebalance b.pool)
        (fun () -> f v)

(* Iterate every entry.  Budgeted: the visit order is unspecified (as
   with [Hashtbl.iter]); each entry is faulted in if needed and pinned
   for its callback, which may perform nested store operations on
   {e other} stores and mutate the visited value in place — but must
   not add or remove entries of this store (collect and apply after,
   as the engine's firing paths do). *)
let iter f t =
  match t with
  | R tbl -> Hashtbl.iter f tbl
  | B b ->
      let entries = Hashtbl.fold (fun _ e acc -> e :: acc) b.tbl [] in
      List.iter
        (fun e ->
          if not e.e_dead then begin
            let v = live_value b e in
            e.e_pins <- e.e_pins + 1;
            Fun.protect
              ~finally:(fun () ->
                e.e_pins <- e.e_pins - 1;
                e.e_hot <- true;
                reweigh b e v;
                Pool.rebalance b.pool)
              (fun () -> f e.e_key v)
          end)
        entries

let fold f t acc =
  match t with
  | R tbl -> Hashtbl.fold f tbl acc
  | B b ->
      let entries = Hashtbl.fold (fun _ e acc -> e :: acc) b.tbl [] in
      List.fold_left
        (fun acc e ->
          if e.e_dead then acc
          else begin
            let v = live_value b e in
            e.e_pins <- e.e_pins + 1;
            Fun.protect
              ~finally:(fun () ->
                e.e_pins <- e.e_pins - 1;
                e.e_hot <- true;
                reweigh b e v;
                Pool.rebalance b.pool)
              (fun () -> f e.e_key v acc)
          end)
        acc entries

let clear t =
  match t with
  | R tbl -> Hashtbl.reset tbl
  | B b ->
      Hashtbl.iter
        (fun _ e ->
          (match e.e_slot with
          | Live _ ->
              Pool.shrink b.pool e.e_weight;
              Pool.entry_dropped b.pool
          | Spilled _ -> ());
          e.e_dead <- true)
        b.tbl;
      Hashtbl.reset b.tbl;
      Queue.clear b.clock;
      (match b.file with
      | Some f ->
          let sz = File.size f in
          if sz > 0 then begin
            File.truncate f;
            Pool.set_disk b.pool (-sz)
          end
      | None -> ())
