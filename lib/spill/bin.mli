(** Binary reader/writer primitives shared by the snapshot codec
    ({!Fw_snap.Codec}) and the spill files.

    Dependency-free: fixed little-endian integers, IEEE float bit
    patterns (decoded states are bit-identical to the encoded ones) and
    length-prefixed strings over [Buffer]/[String].  These primitives
    moved here from the snapshot codec so the out-of-core state store —
    which sits {e below} the engine in the dependency graph — can share
    them; [Fw_snap.Codec] re-exports them and its byte format is
    unchanged. *)

exception Corrupt of string
(** Raised by readers on malformed input. *)

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Corrupt} with a formatted message. *)

(** {2 CRC-32} *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of the whole string. *)

val crc32_sub : string -> int -> int -> int
(** [crc32_sub s pos len] over the substring. *)

(** {2 Writers} *)

val w_u8 : Buffer.t -> int -> unit
val w_u16 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit
val w_i64 : Buffer.t -> int -> unit
val w_raw64 : Buffer.t -> int64 -> unit
val w_float : Buffer.t -> float -> unit
val w_string : Buffer.t -> string -> unit
val w_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val w_option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit

(** {2 Readers}

    A reader is a cursor over a string slice; every read bounds-checks
    and raises {!Corrupt} on truncation. *)

type reader = { src : string; mutable pos : int; limit : int }

val reader : ?pos:int -> ?limit:int -> string -> reader
val remaining : reader -> int
val need : reader -> int -> string -> unit
val r_u8 : reader -> int
val r_u16 : reader -> int
val r_u32 : reader -> int
val r_i64 : reader -> int
val r_raw64 : reader -> int64
val r_float : reader -> float
val r_bool : reader -> bool
val r_string : reader -> string
val r_list : reader -> (reader -> 'a) -> 'a list
val r_option : reader -> (reader -> 'a) -> 'a option

(** {2 Record framing}

    [len u32 | payload | crc32(payload) u32] — the framing shared by
    the WAL, the emitted-row log and the spill files. *)

val frame : string -> string

val decode_frames : (reader -> 'a) -> string -> 'a list
(** Scan an image of concatenated frames; stops cleanly at the first
    torn or corrupt record (everything before it is returned). *)

val spill_kind : int
(** The payload kind byte ([0xF5]) that opens every spill record, so a
    spill blob can never be decoded as a snapshot, WAL or row-log
    payload. *)
