(** Append-only spill file: where evicted store entries live.

    Records share the WAL framing ([len u32 | payload | crc32 u32]);
    every payload opens with {!Bin.spill_kind}, a state-kind tag and
    the entry's key, so fault-in verifies integrity {e and} identity
    before any bytes reach a decoder.  Spill files are scratch —
    checkpoints re-absorb spilled entries, recovery never reads one —
    so there is no fsync; what is guaranteed is that a corrupt or torn
    record surfaces as {!Fault} with a reason, never as garbage
    state. *)

exception Fault of string
(** A spill-file read that cannot be trusted: truncation, CRC mismatch,
    wrong payload kind, or a key mismatch.  The message says which. *)

type t

val create : string -> t
(** [create path] opens (and truncates) the file at [path]. *)

val path : t -> string

val size : t -> int
(** Total bytes written (the append position). *)

val live_bytes : t -> int
(** Bytes of records still referenced by the store; [size - live_bytes]
    is the garbage ratio's numerator, driving compaction. *)

val garbage_bytes : t -> int

val append : t -> kind:int -> key:string -> string -> int * int
(** [append t ~kind ~key value] writes one record and returns its
    [(offset, length)] for the in-memory index. *)

val read : t -> off:int -> len:int -> key:string -> int * string
(** [read t ~off ~len ~key] returns [(kind, value bytes)] of the record
    at [off], verifying frame, CRC, spill kind and that it holds [key].
    Raises {!Fault} otherwise. *)

val release : t -> int -> unit
(** Mark [len] record bytes as garbage (entry faulted in or removed). *)

val truncate : t -> unit
(** Drop every record (e.g. after compaction or {!Store.clear}). *)

val close : t -> unit
val remove : t -> unit
(** [remove] closes and deletes the file; spill files never outlive
    their store. *)

(** {2 Offline scan} *)

type scan = {
  records : (int * int * string * string) list;
      (** (offset, state-kind, key, value bytes) of every intact
          record *)
  skipped : (int * string) list;
      (** (offset, reason) for every record the scan skipped — corrupt
          bytes or a truncated tail surface here instead of crashing *)
}

val scan : string -> scan
(** Scan a spill file on disk, skipping corrupt records (with reasons)
    as long as the framing remains plausible; a mangled length prefix
    ends the scan with its reason in [skipped]. *)

val scan_image : string -> scan
(** Same, over an in-memory image. *)
