(** Memory-budget pool: shared accounting and eviction driver for every
    {!Store} of one engine.

    A pool owns one byte budget and the directory spill files live in.
    Stores report every resident-weight change; when the total exceeds
    the budget, {!rebalance} asks the member stores round-robin to each
    shed one cold entry until the total fits or only pinned entries
    remain — so the enforced bound is
    [budget + pinned slack] (pin depth is bounded by plan depth).

    Single-writer, like the {!Fw_obs} cells it publishes
    ([spill_resident_bytes], [spill_resident_keys], [spill_disk_bytes],
    [spill_evictions_total], [spill_evicted_bytes_total],
    [spill_faults_total], [spill_fault_ns], [spill_compactions_total],
    [spill_compacted_bytes_total]): one pool per domain. *)

type t

val create :
  ?registry:Fw_obs.Registry.t ->
  ?labels:(string * string) list ->
  ?dir:string ->
  budget:int ->
  unit ->
  t
(** [create ~budget ()] builds a pool with a private temporary spill
    directory (removed on {!close}); pass [~dir] to use a fixed
    directory instead (created if missing, left in place on close —
    only the spill files themselves are deleted).  Metrics are
    published on [registry] when given, under [labels] (so several
    pools — e.g. one per server query group — keep distinct series) (e.g. the engine's
    {!Fw_engine.Metrics.registry}), on a private registry otherwise.
    [budget] is in bytes; [0] is valid and forces every access to
    fault.  Raises [Invalid_argument] on a negative budget. *)

val budget : t -> int
val set_budget : t -> int -> unit
(** Adjust the budget (e.g. the server rebalancing shares as query
    groups come and go); shrinking evicts immediately. *)

val dir : t -> string
val resident_bytes : t -> int
val resident_keys : t -> int
val disk_bytes : t -> int

val peak_resident_bytes : t -> int
(** Highest resident total observed {e after} enforcement — the bound
    the pool actually guarantees, asserted by the bench. *)

val max_entry_bytes : t -> int
(** Largest single entry weight seen; the unavoidable slack unit. *)

val evictions : t -> int
val faults : t -> int

val rebalance : t -> unit
(** Evict until the resident total fits the budget (or only pinned
    entries remain).  Stores call this after any growth. *)

val close : t -> unit
(** Close every member store's spill file and delete it; removes the
    pool's temporary directory when it owns one.  Idempotent. *)

(**/**)

(* Store-internal wiring — not for engine code. *)

val fresh_path : t -> name:string -> string
val register : t -> evict:(unit -> int) -> close:(remove:bool -> unit) -> int
val unregister : t -> int -> unit
val grow : t -> int -> unit
val shrink : t -> int -> unit
val entry_added : t -> unit
val entry_dropped : t -> unit
val note_entry_weight : t -> int -> unit
val record_eviction : t -> bytes:int -> unit
val record_fault : t -> ns:int -> unit
val record_compaction : t -> reclaimed:int -> unit
val set_disk : t -> int -> unit
