(* Binary reader/writer primitives shared by the snapshot codec
   ({!Fw_snap.Codec}) and the spill files ({!Fw_spill.File}).

   These used to live inside the snapshot codec; they moved down here —
   below the engine in the dependency graph — so the out-of-core state
   store can serialize evicted per-key state with the exact same
   battle-tested primitives the checkpoint subsystem uses, without
   creating a cycle (the snapshot codec depends on the engine, which
   depends on the store).  [Fw_snap.Codec] re-exports everything, and
   its byte format is unchanged.

   Integers are fixed 64-bit little-endian (an OCaml [int] round-trips
   losslessly through [Int64]); floats are their IEEE bit patterns, so
   a decoded state is bit-identical to the encoded one.  Strings and
   lists are length-prefixed with bounds checks so a corrupted length
   can never trigger a giant allocation. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* --- CRC-32 (IEEE 802.3, polynomial 0xEDB88320) -------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s pos len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s = crc32_sub s 0 (String.length s)

(* --- writer primitives --------------------------------------------- *)

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let w_u16 b n = Buffer.add_int16_le b n
let w_u32 b n = Buffer.add_int32_le b (Int32.of_int n)
let w_i64 b n = Buffer.add_int64_le b (Int64.of_int n)
let w_raw64 b n = Buffer.add_int64_le b n
let w_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let w_string b s =
  w_i64 b (String.length s);
  Buffer.add_string b s

let w_list b f xs =
  w_i64 b (List.length xs);
  List.iter (f b) xs

let w_option b f = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      f b v

(* --- reader primitives --------------------------------------------- *)

type reader = { src : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?limit src =
  let limit = match limit with Some l -> l | None -> String.length src in
  { src; pos; limit }

let remaining r = r.limit - r.pos

let need r n what =
  if n < 0 || remaining r < n then
    corrupt "truncated %s (%d bytes needed, %d available)" what n (remaining r)

let r_u8 r =
  need r 1 "byte";
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  need r 2 "u16";
  let v = Char.code r.src.[r.pos] lor (Char.code r.src.[r.pos + 1] lsl 8) in
  r.pos <- r.pos + 2;
  v

let r_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (String.get_int32_le r.src r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let r_raw64 r =
  need r 8 "i64";
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

let r_i64 r = Int64.to_int (r_raw64 r)
let r_float r = Int64.float_of_bits (r_raw64 r)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "invalid boolean byte %d" n

let r_string r =
  let len = r_i64 r in
  need r len "string";
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let r_list r f =
  let n = r_i64 r in
  (* every element occupies at least one byte, so a count beyond the
     remaining bytes is corruption, not a large list *)
  if n < 0 || n > remaining r then
    corrupt "invalid list length %d (%d bytes remaining)" n (remaining r);
  List.init n (fun _ -> f r)

let r_option r f = match r_bool r with false -> None | true -> Some (f r)

(* --- framed append-only records ------------------------------------ *)

(* The WAL, the emitted-row log and the spill files share one record
   framing: [len u32][payload][crc32(payload) u32], flushed in whole
   records.  [decode_frames] scans an image and stops cleanly at the
   first torn or corrupt record: a crash can leave a partial record at
   the tail, and everything before it is still good. *)

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  w_u32 b (String.length payload);
  Buffer.add_string b payload;
  w_u32 b (crc32 payload);
  Buffer.contents b

let decode_frames decode s =
  let n = String.length s in
  let rec go pos acc =
    if n - pos < 4 then List.rev acc
    else
      let r = reader ~pos s in
      let len = r_u32 r in
      if len <= 0 || len > n - r.pos - 4 then List.rev acc
      else
        let payload_pos = r.pos in
        let crc_pos = payload_pos + len in
        let crc = reader ~pos:crc_pos s |> r_u32 in
        if crc <> crc32_sub s payload_pos len then List.rev acc
        else
          let pr = reader ~pos:payload_pos ~limit:crc_pos s in
          match decode pr with
          | rec_ when remaining pr = 0 -> go (crc_pos + 4) (rec_ :: acc)
          | _ -> List.rev acc
          | exception Corrupt _ -> List.rev acc
          | exception Invalid_argument _ -> List.rev acc
  in
  go 0 []

(* --- spill payload kind -------------------------------------------- *)

(* Every spill-record payload opens with this byte, so a spill blob can
   never be confused with a snapshot payload (kinds 0/1), a WAL record
   (tags 1/2) or a row-log record (window family tags 0/1/2) even if a
   file is misrouted. *)
let spill_kind = 0xF5
