(** Keyed state store with a pluggable backend: [Resident] (a plain
    hashtable, zero overhead — the default when no {!Pool} is given) or
    [Budgeted] (clock/second-chance eviction of cold entries to an
    append-only spill file, lazy fault-in on access, compaction when
    over half the file is garbage).

    The budgeted backend is invisible to results by construction:
    eviction serializes exactly the codec's bytes and fault-in decodes
    exactly them back (floats as IEEE bit patterns), so a faulted entry
    is bit-identical to the evicted one, and fold order inside an entry
    is whatever the engine performed.  The differential fuzzer's
    [spilled] path byte-compares rows and cost counters against the
    resident backend to pin this.

    Usage contract (what the engine's operators follow):

    - {!find} values are read-only unless followed by {!set}.
    - In-place mutation goes through {!pinned} (or the {!iter}/{!fold}
      callbacks, where the current entry is pinned): pinned entries are
      never evicted, so nested store operations during downstream
      delivery cannot detach the value being mutated.
    - {!update} callbacks must not perform nested store operations.

    A corrupt or truncated spill record surfaces at fault-in as
    {!File.Fault} naming the store, key and reason — never as silently
    wrong state. *)

type 'a codec = {
  kind : int;
      (** state-kind tag byte written into every record; fault-in
          rejects a record whose tag disagrees *)
  enc : Buffer.t -> 'a -> unit;
  dec : Bin.reader -> 'a;
  weight : 'a -> int;
      (** resident-bytes estimate; drives eviction accounting only,
          never results *)
}

type 'a t

val create : ?pool:Pool.t -> name:string -> 'a codec -> 'a t
(** Without [pool]: the resident backend.  With [pool]: the budgeted
    backend, registered with the pool for eviction sweeps; its spill
    file (named after [name]) is created lazily on first eviction and
    deleted by {!Pool.close}. *)

val length : 'a t -> int
(** Live entries (resident + spilled). *)

val is_empty : 'a t -> bool

val find : 'a t -> string -> 'a option
(** Faults the entry in if spilled and marks it hot.  Treat the value
    as read-only unless a {!set} of the same key follows. *)

val set : 'a t -> string -> 'a -> unit
val remove : 'a t -> string -> unit

val update : 'a t -> string -> ('a option -> 'a) -> unit
(** [Hashtbl.find_opt]-then-[replace] in one operation: the callback
    sees the current value ([None] when absent) and returns the
    replacement.  It must not perform nested store operations. *)

val pinned : 'a t -> string -> init:(unit -> 'a) -> ('a -> 'b) -> 'b
(** Find-or-create, pin the entry for the callback's duration, then
    re-account its weight.  The callback may mutate the value in place
    and perform arbitrary nested store operations (e.g. fire downstream
    operators that touch other stores of the same pool). *)

val iter : (string -> 'a -> unit) -> 'a t -> unit
(** Visit every entry (unspecified order, as with [Hashtbl.iter]);
    spilled entries fault in, and the current entry is pinned during
    its callback.  The callback may mutate the visited value and touch
    other stores, but must not add/remove entries of this store —
    collect and apply afterwards. *)

val fold : (string -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Same visiting rules as {!iter}.  Folding over a budgeted store
    faults every entry in — this is how checkpoints re-absorb spilled
    state, keeping snapshots self-contained. *)

val clear : 'a t -> unit
(** Drop every entry and truncate the spill file. *)
