(* Memory-budget pool: the shared accounting and eviction driver behind
   every {!Store} of one engine.

   A pool owns one byte budget and the directory the stores' spill
   files live in.  Stores report every resident-weight change here;
   whenever the resident total exceeds the budget, {!rebalance} asks
   the registered stores — round-robin — to each evict one cold entry
   (clock / second-chance, see {!Store}) until the total fits again or
   only pinned entries remain (a pinned entry is one the engine is
   mutating right now; evicting it would detach the live value from the
   store, so the budget is allowed to overshoot by the pinned slack —
   bounded by plan depth × the largest entry).

   Single-writer like the metric cells it publishes: one pool per
   domain (the sharded runner gives each worker its own, with the
   budget split evenly). *)

module Counter = Fw_obs.Counter
module Gauge = Fw_obs.Gauge
module Histogram = Fw_obs.Histogram

type member = { m_id : int; m_evict : unit -> int; m_close : remove:bool -> unit }

type t = {
  mutable budget : int;
  mutable resident : int;  (* sum of live entry weights across stores *)
  mutable disk : int;  (* sum of spill-file sizes *)
  dir : string;
  owns_dir : bool;
  mutable members : member list;
  mutable next_id : int;
  mutable peak_resident : int;
  mutable max_entry : int;  (* largest entry weight ever resident *)
  mutable closed : bool;
  (* published metrics *)
  g_resident_bytes : Gauge.t;
  g_resident_keys : Gauge.t;
  g_disk_bytes : Gauge.t;
  c_evictions : Counter.t;
  c_eviction_bytes : Counter.t;
  c_faults : Counter.t;
  h_fault_ns : Histogram.t;
  c_compactions : Counter.t;
  c_compacted_bytes : Counter.t;
}

let fresh_temp_dir () =
  let d = Filename.temp_file "fwspill" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?registry ?(labels = []) ?dir ~budget () =
  if budget < 0 then invalid_arg "Fw_spill.Pool.create: negative budget";
  let dir, owns_dir =
    match dir with
    | Some d ->
        mkdir_p d;
        (d, false)
    | None -> (fresh_temp_dir (), true)
  in
  let reg =
    match registry with Some r -> r | None -> Fw_obs.Registry.create ()
  in
  {
    budget;
    resident = 0;
    disk = 0;
    dir;
    owns_dir;
    members = [];
    next_id = 0;
    peak_resident = 0;
    max_entry = 0;
    closed = false;
    g_resident_bytes =
      Fw_obs.Registry.gauge reg ~labels
        ~help:"Bytes of per-key state resident in memory (spill pool)"
        "spill_resident_bytes";
    g_resident_keys =
      Fw_obs.Registry.gauge reg ~labels
        ~help:"Per-key state entries resident in memory (spill pool)"
        "spill_resident_keys";
    g_disk_bytes =
      Fw_obs.Registry.gauge reg ~labels
        ~help:"Bytes occupied by spill files on disk (live + garbage)"
        "spill_disk_bytes";
    c_evictions =
      Fw_obs.Registry.counter reg ~labels
        ~help:"Entries evicted from memory to a spill file"
        "spill_evictions_total";
    c_eviction_bytes =
      Fw_obs.Registry.counter reg ~labels
        ~help:"Resident bytes released by evictions"
        "spill_evicted_bytes_total";
    c_faults =
      Fw_obs.Registry.counter reg ~labels
        ~help:"Entries faulted back in from a spill file"
        "spill_faults_total";
    h_fault_ns =
      Fw_obs.Registry.histogram reg ~labels
        ~help:"Latency of a spill fault-in (read + verify + decode)"
        "spill_fault_ns";
    c_compactions =
      Fw_obs.Registry.counter reg ~labels
        ~help:"Spill-file compactions (garbage ratio exceeded threshold)"
        "spill_compactions_total";
    c_compacted_bytes =
      Fw_obs.Registry.counter reg ~labels
        ~help:"Garbage bytes reclaimed by spill-file compactions"
        "spill_compacted_bytes_total";
  }

let budget t = t.budget
let dir t = t.dir
let resident_bytes t = t.resident
let resident_keys t = int_of_float (Gauge.get t.g_resident_keys)
let disk_bytes t = t.disk
let peak_resident_bytes t = t.peak_resident
let max_entry_bytes t = t.max_entry
let evictions t = Counter.get t.c_evictions
let faults t = Counter.get t.c_faults

let fresh_path t ~name =
  let id = t.next_id in
  t.next_id <- id + 1;
  Filename.concat t.dir (Printf.sprintf "%s-%d.spill" name id)

(* --- store-side accounting (see {!Store}) --------------------------- *)

let grow t bytes =
  t.resident <- t.resident + bytes;
  Gauge.set t.g_resident_bytes (float_of_int t.resident)

let shrink t bytes =
  t.resident <- t.resident - bytes;
  Gauge.set t.g_resident_bytes (float_of_int t.resident)

let entry_added t = Gauge.add t.g_resident_keys 1.0
let entry_dropped t = Gauge.add t.g_resident_keys (-1.0)

let note_entry_weight t w = if w > t.max_entry then t.max_entry <- w

let record_eviction t ~bytes =
  Counter.inc t.c_evictions;
  Counter.add t.c_eviction_bytes bytes

let record_fault t ~ns =
  Counter.inc t.c_faults;
  Histogram.record t.h_fault_ns ns

let record_compaction t ~reclaimed =
  Counter.inc t.c_compactions;
  Counter.add t.c_compacted_bytes reclaimed

let set_disk t bytes_delta =
  t.disk <- t.disk + bytes_delta;
  Gauge.set t.g_disk_bytes (float_of_int t.disk)

(* --- eviction driver ------------------------------------------------ *)

(* Ask every member store to shed one cold entry per pass until the
   resident total fits the budget or a full pass frees nothing (only
   pinned or already-spilled entries remain).  The peak gauge is
   sampled here — after enforcement — so it reports the bound the pool
   actually guarantees. *)
let rebalance t =
  if not t.closed then begin
    let continue_ = ref (t.resident > t.budget) in
    while !continue_ do
      let freed =
        List.fold_left
          (fun acc m ->
            if t.resident > t.budget then acc + m.m_evict () else acc)
          0 t.members
      in
      continue_ := freed > 0 && t.resident > t.budget
    done;
    if t.resident > t.peak_resident then t.peak_resident <- t.resident
  end

let set_budget t budget =
  if budget < 0 then invalid_arg "Fw_spill.Pool.set_budget: negative budget";
  t.budget <- budget;
  rebalance t

let register t ~evict ~close =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.members <- t.members @ [ { m_id = id; m_evict = evict; m_close = close } ];
  id

let unregister t id =
  t.members <- List.filter (fun m -> m.m_id <> id) t.members

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun m -> m.m_close ~remove:true) t.members;
    t.members <- [];
    if t.owns_dir then try Unix.rmdir t.dir with Unix.Unix_error _ -> ()
  end
