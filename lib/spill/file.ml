(* Append-only spill file: the disk side of the out-of-core state
   store.

   Records use the shared framing [len u32][payload][crc32 u32]
   ({!Bin.frame}); every payload opens with the {!Bin.spill_kind} byte
   followed by a state-kind tag and the entry's key, so a record read
   back at fault-in time is verified to be (a) intact (CRC), (b) a
   spill record at all, and (c) the record for the requested key —
   three independent ways a bug or a torn write would otherwise smuggle
   wrong state into the engine.

   Spill files are {e scratch}: checkpoints re-absorb every spilled
   entry into the snapshot (see {!Store.fold}), so recovery never reads
   one, and {!remove} deletes them on close.  Durability is therefore
   not a goal — no fsync, no rename dance — but fault-in failures are:
   a corrupt record surfaces as {!Fault} with a reason, never as a
   garbage state. *)

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

type t = {
  path : string;
  fd : Unix.file_descr;
  mutable size : int;  (* append position: total bytes written *)
  mutable live : int;  (* record bytes still referenced by the store *)
  mutable closed : bool;
}

let create path =
  let fd = Unix.openfile path [ Unix.O_RDWR; O_CREAT; O_TRUNC ] 0o600 in
  { path; fd; size = 0; live = 0; closed = false }

let path t = t.path
let size t = t.size
let live_bytes t = t.live
let garbage_bytes t = t.size - t.live

let check_open t what =
  if t.closed then invalid_arg (Printf.sprintf "Fw_spill.File.%s: closed" what)

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go pos =
    if pos < n then go (pos + Unix.write fd b pos (n - pos))
  in
  go 0

let read_exact fd buf off len =
  let rec go pos =
    if pos < len then
      match Unix.read fd buf (off + pos) (len - pos) with
      | 0 -> fault "truncated spill file (wanted %d bytes, got %d)" len pos
      | n -> go (pos + n)
  in
  go 0

(* Build one record's payload: kind byte, state-kind tag, key, value. *)
let payload ~kind ~key value =
  let b = Buffer.create (String.length key + String.length value + 16) in
  Bin.w_u8 b Bin.spill_kind;
  Bin.w_u8 b kind;
  Bin.w_string b key;
  Buffer.add_string b value;
  Buffer.contents b

(* Append a record; returns (offset, record length on disk). *)
let append t ~kind ~key value =
  check_open t "append";
  let rec_ = Bin.frame (payload ~kind ~key value) in
  let off = t.size in
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  write_all t.fd rec_;
  let len = String.length rec_ in
  t.size <- t.size + len;
  t.live <- t.live + len;
  (off, len)

(* Decode one record image (with framing) and verify it belongs to
   [key] when given; returns (kind, value bytes). *)
let decode_record ?key s =
  if String.length s < 8 then fault "truncated spill record";
  let r = Bin.reader s in
  let plen =
    try Bin.r_u32 r with Bin.Corrupt m -> fault "bad spill record: %s" m
  in
  if plen <= 0 || plen <> String.length s - 8 then
    fault "bad spill record length %d (record is %d bytes)" plen
      (String.length s);
  let crc = Bin.reader ~pos:(4 + plen) s |> Bin.r_u32 in
  let actual = Bin.crc32_sub s 4 plen in
  if crc <> actual then
    fault "spill record CRC mismatch (stored %08x, computed %08x)" crc actual;
  let pr = Bin.reader ~pos:4 ~limit:(4 + plen) s in
  try
    let k = Bin.r_u8 pr in
    if k <> Bin.spill_kind then
      fault "payload kind %#x is not a spill record (%#x)" k Bin.spill_kind;
    let kind = Bin.r_u8 pr in
    let rkey = Bin.r_string pr in
    (match key with
    | Some key when not (String.equal key rkey) ->
        fault "spill record holds key %S where %S was expected" rkey key
    | _ -> ());
    (kind, rkey, String.sub s pr.Bin.pos (Bin.remaining pr))
  with Bin.Corrupt m -> fault "bad spill record: %s" m

(* Read the record at [off] (length [len]) back; verifies framing, CRC,
   the spill kind byte and the key before returning the value bytes. *)
let read t ~off ~len ~key =
  check_open t "read";
  if off < 0 || len < 8 || off + len > t.size then
    fault "spill record out of bounds (off %d, len %d, file %d)" off len t.size;
  let buf = Bytes.create len in
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  read_exact t.fd buf 0 len;
  let kind, _, value = decode_record ~key (Bytes.unsafe_to_string buf) in
  (kind, value)

(* A faulted-in or removed record's bytes become garbage. *)
let release t len = t.live <- t.live - len

let truncate t =
  check_open t "truncate";
  Unix.ftruncate t.fd 0;
  t.size <- 0;
  t.live <- 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end

let remove t =
  close t;
  try Unix.unlink t.path with Unix.Unix_error _ -> ()

(* --- offline scan --------------------------------------------------- *)

type scan = {
  records : (int * int * string * string) list;
      (** (offset, state-kind, key, value bytes) of every intact record *)
  skipped : (int * string) list;
      (** (offset, reason) for every record the scan had to skip *)
}

(* Scan a spill-file image record by record.  Unlike {!Bin.decode_frames}
   (which stops at the first bad record — right for a log whose tail may
   be torn), the scan {e skips} a record whose CRC or payload is bad and
   keeps going as long as the length prefix itself is plausible, so one
   flipped bit doesn't hide every record behind it.  A mangled length
   prefix ends the scan (there is no resync marker), with the reason
   surfaced. *)
let scan_image s =
  let n = String.length s in
  let rec go pos records skipped =
    if n - pos < 4 then
      { records = List.rev records; skipped = List.rev skipped }
    else
      let r = Bin.reader ~pos s in
      let len = Bin.r_u32 r in
      if len <= 0 || len > n - r.Bin.pos - 4 then
        {
          records = List.rev records;
          skipped =
            List.rev
              ((pos, Printf.sprintf "implausible record length %d" len)
              :: skipped);
        }
      else
        let total = 4 + len + 4 in
        let image = String.sub s pos total in
        match decode_record image with
        | kind, key, value ->
            go (pos + total) ((pos, kind, key, value) :: records) skipped
        | exception Fault reason ->
            go (pos + total) records ((pos, reason) :: skipped)
  in
  go 0 [] []

let scan path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  scan_image s
