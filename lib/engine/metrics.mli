(** Execution metrics: the engine's window counters (the cost model's
    quantity) plus the {!Fw_obs} registry they live in.

    The paper's cost model counts the items each window instance
    processes; the engine increments {!record} once per (item, instance)
    insertion, so after a run over exactly one common period the
    per-window counters can be compared with the analytic costs of
    {!Fw_wcg.Cost_model} (see the [validate] bench section).

    Since the observability layer landed, a [Metrics.t] is a facade
    over an {!Fw_obs.Registry.t}: the legacy window counters, the
    per-node operator statistics and the incremental-mode fallback
    counters are all registry cells, so one {!snapshot_json} or
    {!prometheus} call exports everything the run recorded. *)

type t

(** Per-operator statistics, one per plan node.  The cells are plain
    registry handles; the executor updates them with O(1) field
    increments, and samples activation latencies into [fire_ns]
    (1-in-16 unless a trace is attached, see {!Stream_exec}). *)
type node_stats = {
  rows_in : Fw_obs.Counter.t;  (** items delivered to the node *)
  rows_out : Fw_obs.Counter.t;  (** items the node forwarded / emitted *)
  fires : Fw_obs.Counter.t;  (** window instances fired *)
  pane_flushes : Fw_obs.Counter.t;  (** pane mode: panes sealed *)
  swag_evictions : Fw_obs.Counter.t;  (** pane mode: queue entries evicted *)
  fire_ns : Fw_obs.Histogram.t;  (** sampled activation latency *)
  fire_delay_ns : Fw_obs.Histogram.t;
      (** sampled wall-clock delay from the triggering watermark
          broadcast (under sharding: from the driver stamping the
          punctuation, so queueing shows up) to the activation *)
  mutable activations : int;  (** activation count, drives sampling *)
}

val create : unit -> t

(* --- legacy counter API (contract pinned by test_engine) ----------- *)

val record : t -> Fw_window.Window.t -> int -> unit
(** [record m w n] adds [n] processed items to window [w]. *)

val record_ingest : t -> int -> unit

val record_watermark : t -> wm:int -> at_ns:int -> unit
(** Publish watermark progress: sets the [engine_watermark_ticks]
    gauge to [wm] and [engine_watermark_advance_ts_ns] to [at_ns] (a
    wall-clock stamp).  A {!Fw_obs.Meter} sampling the registry turns
    the latter into [engine_watermark_lag_ns].  The executor calls
    this on every watermark broadcast when observing. *)

val processed : t -> Fw_window.Window.t -> int
(** Per contract, [0] for windows never recorded — callers comparing
    against the cost model probe windows that cheap plans never charge
    (e.g. factor windows absent from the naive plan), and a lookup
    must not raise there. *)

val total_processed : t -> int
val ingested : t -> int

val per_window : t -> (Fw_window.Window.t * int) list
(** Sorted by window. *)

val pp : Format.formatter -> t -> unit
(** Stable rendering: ingested first, then one line per window sorted
    by {!Fw_window.Window.compare}, then the total — golden-testable. *)

(* --- observability layer ------------------------------------------- *)

val registry : t -> Fw_obs.Registry.t

val node :
  t -> id:int -> kind:string -> ?window:Fw_window.Window.t -> unit -> node_stats
(** Register (or retrieve) the per-operator stats of plan node [id].
    [kind] is the operator kind label ([source], [filter], [multicast],
    [union], [win-naive], [win-pane]). *)

val record_fallback :
  t -> id:int -> window:Fw_window.Window.t -> reason:string -> unit
(** Count an incremental-mode node falling back to the per-instance
    path, labelled with the reason. *)

val fallbacks : t -> (int * string * string * int) list
(** [(node, window, reason, count)] for every fallback recorded,
    sorted. *)

val merge_into : into:t -> t -> unit
(** Fold another run's metrics into [into]: every registry cell
    combines via {!Fw_obs.Registry.merge_into} (counters/gauges add,
    histograms merge exactly) and the legacy window counters stay
    visible through {!processed}/{!per_window} on the merged value.
    This is how the sharded runner ({!Fw_shard.Runner}) reconciles
    per-shard accounting: summed cost-model counters equal a
    single-shard run's.  The source must no longer be written to. *)

val set_trace : t -> Fw_obs.Trace.t -> unit
(** Attach a span trace.  Attach it {e before} creating the executor:
    the executor reads it once at construction to pick its sampling
    rate. *)

val trace : t -> Fw_obs.Trace.t option

val snapshot_json : t -> string
(** Full JSON snapshot: every registry metric plus the trace when one
    is attached. *)

val prometheus : t -> string
(** Prometheus text exposition of the registry. *)
