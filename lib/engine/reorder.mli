(** Bounded-lateness reordering in front of the executor.

    {!Stream_exec} requires time-ordered input; real streams are not.
    The reorder buffer holds events back until the watermark — the
    maximum event time seen, minus an {e allowed lateness} — passes
    them, releasing them in timestamp order.  Events arriving behind
    the already-released frontier are dropped and counted rather than
    crashing the pipeline (the usual engine policy for late data). *)

type t

type stats = {
  buffered_peak : int;  (** high-water mark of the buffer *)
  released : int;
  dropped_late : int;
}

val create :
  lateness:int ->
  ?mode:Stream_exec.mode ->
  ?observe:bool ->
  Fw_plan.Plan.t ->
  ?metrics:Metrics.t ->
  unit ->
  t
(** [lateness] is the slack (in ticks) granted to stragglers; [0] means
    input must already be ordered.  [mode] selects the wrapped
    executor's engine (defaults to {!Stream_exec.Naive}, like
    {!Stream_exec.create}).  Raises [Invalid_argument] on negative
    lateness or an invalid plan.

    Unless [~observe:false], the buffer publishes its statistics into
    the metrics registry as it runs — [reorder_released_total],
    [reorder_dropped_late_total] (counters) and [reorder_buffered_peak]
    (gauge) — so late-data behavior appears in [--stats] exports
    alongside the engine's per-node metrics.  The toggle also reaches
    the wrapped executor. *)

val feed : t -> Event.t -> unit
(** Accepts events in any order within the lateness bound. *)

val close : t -> horizon:int -> Row.t list * stats
(** Flush the buffer, close the executor, return rows and statistics. *)

val run :
  lateness:int ->
  ?mode:Stream_exec.mode ->
  ?observe:bool ->
  ?metrics:Metrics.t ->
  Fw_plan.Plan.t ->
  horizon:int ->
  Event.t list ->
  Row.t list * stats
(** Convenience wrapper over [create]/[feed]/[close]. *)

(** {2 Snapshot support}

    Mirror of the buffer's exact shape for the checkpoint codec
    ({!Fw_snap.Codec}), like {!Stream_exec.export}: a restored buffer
    releases the same events in the same order, so rows and statistics
    after a restore are identical to an uninterrupted run. *)

type export = {
  x_lateness : int;
  x_groups : Event.t list list;
      (** buffered events: one group per distinct timestamp, groups in
          ascending time order, events within a group newest-first
          (the internal insertion order) *)
  x_peak : int;
  x_released : int;
  x_dropped : int;
  x_frontier : int;
  x_max_seen : int;
  x_exec : Stream_exec.export;  (** the wrapped executor's state *)
}

val export : t -> export

val import :
  ?metrics:Metrics.t -> ?observe:bool -> Fw_plan.Plan.t -> export -> t
(** Rebuild a reorder buffer (and its wrapped executor) from an export.
    Raises [Invalid_argument] on malformed buffer groups, negative
    statistics, or an executor/plan mismatch.  Registry counters in
    [metrics] are {e not} restored — as with {!Stream_exec.import},
    the caller replays them; the [stats] record itself is restored
    exactly. *)
