open Fw_window
module Plan = Fw_plan.Plan
module Validate = Fw_plan.Validate

type report = { rows : Row.t list; metrics : Metrics.t }

type saving = {
  window : Window.t;
  baseline_items : int;
  rewritten_items : int;
}

type comparison = {
  baseline : report;
  rewritten : report;
  savings : saving list;
}

let saved s = s.baseline_items - s.rewritten_items

let execute ?metrics ?mode ?trace ?spill plan ~horizon events =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  (match trace with Some tr -> Metrics.set_trace metrics tr | None -> ());
  let rows = Stream_exec.run ~metrics ?mode ?spill plan ~horizon events in
  { rows; metrics }

let describe_diff diff =
  let pp_side ppf = function
    | Some row -> Row.pp ppf row
    | None -> Format.pp_print_string ppf "(missing)"
  in
  Format.asprintf "%d mismatching rows; first: %a"
    (List.length diff)
    (fun ppf -> function
      | [] -> Format.pp_print_string ppf "none"
      | (a, b) :: _ -> Format.fprintf ppf "%a vs %a" pp_side a pp_side b)
    diff

let verify_against_naive plan ~horizon events =
  let { rows; _ } = execute plan ~horizon events in
  let oracle =
    Oracle.run (Plan.agg plan) (Plan.exposed_windows plan) ~horizon
      (Oracle.apply_filter plan events)
  in
  if Row.equal_sets rows oracle then Ok ()
  else Error (describe_diff (Row.diff rows oracle))

(* Per-operator delta over the union of both runs' windows: where the
   rewriting saved work node by node, not just in total.  Factor
   windows appear only on the rewritten side (baseline 0, a negative
   saving — the investment the downstream savings pay for). *)
let per_window_savings a b =
  let keys =
    Window.Set.union
      (Window.Set.of_list (List.map fst (Metrics.per_window a.metrics)))
      (Window.Set.of_list (List.map fst (Metrics.per_window b.metrics)))
  in
  List.map
    (fun window ->
      {
        window;
        baseline_items = Metrics.processed a.metrics window;
        rewritten_items = Metrics.processed b.metrics window;
      })
    (Window.Set.elements keys)

let pp_savings ppf savings =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf s ->
         Format.fprintf ppf "%a: %d -> %d (%+d)" Window.pp s.window
           s.baseline_items s.rewritten_items (- (saved s))))
    savings

let compare_plans a b ~horizon events =
  match Validate.check_equivalent a b with
  | Error _ as e -> e
  | Ok () ->
      let ra = execute a ~horizon events in
      let rb = execute b ~horizon events in
      if Row.equal_sets ra.rows rb.rows then
        Ok
          {
            baseline = ra;
            rewritten = rb;
            savings = per_window_savings ra rb;
          }
      else Error (describe_diff (Row.diff ra.rows rb.rows))
