open Fw_window
module Counter = Fw_obs.Counter
module Gauge = Fw_obs.Gauge
module Registry = Fw_obs.Registry

type node_stats = {
  rows_in : Counter.t;
  rows_out : Counter.t;
  fires : Counter.t;
  pane_flushes : Counter.t;
  swag_evictions : Counter.t;
  fire_ns : Fw_obs.Histogram.t;
  fire_delay_ns : Fw_obs.Histogram.t;
  mutable activations : int;
}

type t = {
  registry : Registry.t;
  ingested_c : Counter.t;
  wm_ticks : Gauge.t;
  wm_advance_ts : Gauge.t;
  mutable processed : Counter.t Window.Map.t;
  nodes : (int, node_stats) Hashtbl.t;
  mutable trace : Fw_obs.Trace.t option;
}

let create () =
  let registry = Registry.create () in
  {
    registry;
    ingested_c =
      Registry.counter registry "engine_ingested_events_total"
        ~help:"Events accepted by the source";
    wm_ticks =
      Registry.gauge registry "engine_watermark_ticks"
        ~help:"Event-time watermark (ticks); merges by max across shards";
    wm_advance_ts =
      Registry.gauge registry "engine_watermark_advance_ts_ns"
        ~help:
          "Wall clock (ns) of the last watermark advance; the meter \
           derives engine_watermark_lag_ns from it";
    processed = Window.Map.empty;
    nodes = Hashtbl.create 16;
    trace = None;
  }

let registry t = t.registry

(* --- legacy counter API -------------------------------------------- *)

let window_counter t w =
  match Window.Map.find_opt w t.processed with
  | Some c -> c
  | None ->
      let c =
        Registry.counter t.registry "window_processed_items_total"
          ~labels:[ ("window", Window.to_string w) ]
          ~help:"Items folded into fired instances (the cost model's count)"
      in
      t.processed <- Window.Map.add w c t.processed;
      c

let record t w n = Counter.add (window_counter t w) n
let record_ingest t n = Counter.add t.ingested_c n

let record_watermark t ~wm ~at_ns =
  Gauge.set t.wm_ticks (float_of_int wm);
  Gauge.set t.wm_advance_ts (float_of_int at_ns)

let processed t w =
  match Window.Map.find_opt w t.processed with
  | Some c -> Counter.get c
  | None -> 0

let total_processed t =
  Window.Map.fold (fun _ c acc -> acc + Counter.get c) t.processed 0

let ingested t = Counter.get t.ingested_c

let per_window t =
  List.map (fun (w, c) -> (w, Counter.get c)) (Window.Map.bindings t.processed)

let pp ppf t =
  Format.fprintf ppf "@[<v>ingested: %d@," (ingested t);
  List.iter
    (fun (w, n) -> Format.fprintf ppf "%a processed %d@," Window.pp w n)
    (per_window t);
  Format.fprintf ppf "total processed: %d@]" (total_processed t)

(* --- observability layer ------------------------------------------- *)

let node t ~id ~kind ?window () =
  match Hashtbl.find_opt t.nodes id with
  | Some ns -> ns
  | None ->
      let labels =
        [ ("node", string_of_int id); ("kind", kind) ]
        @
        match window with
        | None -> []
        | Some w -> [ ("window", Window.to_string w) ]
      in
      let c name help = Registry.counter t.registry name ~labels ~help in
      let ns =
        {
          rows_in = c "node_rows_in_total" "Items delivered to the node";
          rows_out = c "node_rows_out_total" "Items forwarded or emitted";
          fires = c "node_fires_total" "Window instances fired";
          pane_flushes = c "node_pane_flushes_total" "Panes sealed";
          swag_evictions =
            c "node_swag_evictions_total" "Sliding-queue entries evicted";
          fire_ns =
            Registry.histogram t.registry "node_fire_ns" ~labels
              ~help:"Sampled activation latency (ns)";
          fire_delay_ns =
            Registry.histogram t.registry "node_fire_delay_ns" ~labels
              ~help:
                "Sampled watermark-to-fire delay (ns): wall time from \
                 the triggering watermark broadcast to the activation";
          activations = 0;
        }
      in
      Hashtbl.replace t.nodes id ns;
      ns

let fallback_metric = "engine_incremental_fallbacks_total"

let record_fallback t ~id ~window ~reason =
  Counter.inc
    (Registry.counter t.registry fallback_metric
       ~labels:
         [
           ("node", string_of_int id);
           ("window", Window.to_string window);
           ("reason", reason);
         ]
       ~help:"Incremental-mode nodes running the per-instance fallback")

let fallbacks t =
  List.filter_map
    (fun (e : Registry.entry) ->
      if e.Registry.name <> fallback_metric then None
      else
        match e.Registry.metric with
        | Registry.Counter c ->
            let label k =
              Option.value ~default:"" (List.assoc_opt k e.Registry.labels)
            in
            Some
              ( int_of_string (label "node"),
                label "window",
                label "reason",
                Counter.get c )
        | _ -> None)
    (Registry.entries t.registry)
  |> List.sort compare

(* Registry-level merge, then re-intern the source's window counters so
   the facade's Window.Map sees the cells the merge created (or found):
   [window_counter] resolves through the registry by (name, labels), so
   no count is ever added twice. *)
let merge_into ~into src =
  Fw_obs.Registry.merge_into ~into:into.registry src.registry;
  List.iter (fun (w, _) -> ignore (window_counter into w)) (per_window src)

let set_trace t tr = t.trace <- Some tr
let trace t = t.trace
let snapshot_json t = Fw_obs.Export.snapshot_json ?trace:t.trace t.registry
let prometheus t = Fw_obs.Export.prometheus t.registry
