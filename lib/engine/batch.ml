module Vec = Fw_util.Vec

type mark = { at : int; wm : int }

type t = {
  times : int Vec.t;
  keys : string Vec.t;
  values : float Vec.t;
  marks : mark Vec.t;  (* ascending [at]; at most one mark per position *)
}

type slot = Ev of Event.t | Punct of int

let create () =
  {
    times = Vec.create ();
    keys = Vec.create ();
    values = Vec.create ();
    marks = Vec.create ();
  }

let length b = Vec.length b.times
let mark_count b = Vec.length b.marks
let is_empty b = Vec.length b.times = 0 && Vec.length b.marks = 0

let reset b =
  Vec.reset b.times;
  Vec.reset b.keys;
  Vec.reset b.values;
  Vec.reset b.marks

let push b e =
  Vec.push b.times e.Event.time;
  Vec.push b.keys e.Event.key;
  Vec.push b.values e.Event.value

let push_punct b wm =
  let n = Vec.length b.times in
  let m = Vec.length b.marks in
  if m > 0 && (Vec.get b.marks (m - 1)).at = n then begin
    (* coalesce consecutive punctuations at one position: only the
       largest watermark is observable (watermarks are monotone) *)
    let last = Vec.get b.marks (m - 1) in
    if wm > last.wm then (Vec.unsafe_data b.marks).(m - 1) <- { last with wm }
  end
  else Vec.push b.marks { at = n; wm }

let time b i = Vec.get b.times i
let key b i = Vec.get b.keys i
let value b i = Vec.get b.values i

let event b i =
  { Event.time = Vec.get b.times i; key = Vec.get b.keys i; value = Vec.get b.values i }

let mark b j = let m = Vec.get b.marks j in (m.at, m.wm)

let times b = Vec.unsafe_data b.times
let keys b = Vec.unsafe_data b.keys
let values b = Vec.unsafe_data b.values

let of_events events =
  let b = create () in
  List.iter (push b) events;
  b

let of_slots slots =
  let b = create () in
  List.iter
    (function Ev e -> push b e | Punct wm -> push_punct b wm)
    slots;
  b

(* Walk events and punctuation in interleaved order: a mark at
   position [p] fires after event [p - 1] and before event [p]. *)
let iter_slots f b =
  let n = Vec.length b.times and nm = Vec.length b.marks in
  let j = ref 0 in
  for i = 0 to n - 1 do
    while !j < nm && (Vec.get b.marks !j).at <= i do
      f (Punct (Vec.get b.marks !j).wm);
      incr j
    done;
    f (Ev (event b i))
  done;
  while !j < nm do
    f (Punct (Vec.get b.marks !j).wm);
    incr j
  done

let to_slots b =
  let acc = ref [] in
  iter_slots (fun s -> acc := s :: !acc) b;
  List.rev !acc

let is_time_ordered b =
  let n = Vec.length b.times in
  let ok = ref true in
  let prev = ref min_int in
  for i = 0 to n - 1 do
    let t = Vec.get b.times i in
    if t < !prev then ok := false;
    prev := t
  done;
  !ok
