open Fw_window
module Aggregate = Fw_agg.Aggregate
module Combine = Fw_agg.Combine
module Plan = Fw_plan.Plan

let keys_of events =
  List.sort_uniq String.compare (List.map (fun e -> e.Event.key) events)

module Slot = struct
  type t = Interval.t * string

  let compare (i1, k1) (i2, k2) =
    match Interval.compare i1 i2 with
    | 0 -> String.compare k1 k2
    | c -> c
end

module Slot_map = Map.Make (Slot)

(* --- data-dependent families ----------------------------------------- *)

(* Per-key event lists in stream order (the engine's feed order:
   [Event.sort], horizon-clipped) — the coordinate system of the count
   and session families, whose instances depend on the data. *)
let per_key_streams ~horizon events =
  let events =
    List.filter (fun e -> e.Event.time < horizon) (Event.sort events)
  in
  let tbl : (string, Event.t list) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.Event.key with
      | None ->
          order := e.Event.key :: !order;
          Hashtbl.replace tbl e.Event.key [ e ]
      | Some es -> Hashtbl.replace tbl e.Event.key (e :: es))
    events;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let state_of_events agg = function
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun st e -> Combine.add st e.Event.value)
           (Combine.of_value agg first.Event.value)
           rest)

(* Count hop: instance [m] of key [k] spans that key's event ordinals
   [m·s, m·s+r); only instances the key has fully seen exist. *)
let count_slots agg window ~horizon events =
  let r = Window.range window and s = Window.slide window in
  List.fold_left
    (fun table (key, evs) ->
      let evs = Array.of_list evs in
      let n = Array.length evs in
      let rec go m table =
        let lo = m * s in
        if lo + r > n then table
        else
          let state =
            Option.get
              (state_of_events agg (Array.to_list (Array.sub evs lo r)))
          in
          go (m + 1)
            (Slot_map.add (Interval.make ~lo ~hi:(lo + r), key) state table)
      in
      go 0 table)
    Slot_map.empty
    (per_key_streams ~horizon events)

(* Session: per-key gap clustering — an event extends its key's open
   session iff it lands before [last + gap]; a session is complete (and
   emitted with interval [first, last+gap)) once its deadline is at or
   before the horizon the engine closes at. *)
let session_slots agg window ~horizon events =
  let gap = Window.gap window in
  List.fold_left
    (fun table (key, evs) ->
      let close table = function
        | None -> table
        | Some (first, last, sess) ->
            if last + gap <= horizon then
              Slot_map.add
                (Interval.make ~lo:first ~hi:(last + gap), key)
                (Option.get (state_of_events agg (List.rev sess)))
                table
            else table
      in
      let table, open_session =
        List.fold_left
          (fun (table, open_session) e ->
            match open_session with
            | Some (first, last, sess) when e.Event.time < last + gap ->
                (table, Some (first, e.Event.time, e :: sess))
            | _ ->
                ( close table open_session,
                  Some (e.Event.time, e.Event.time, [ e ]) ))
          (table, None) evs
      in
      close table open_session)
    Slot_map.empty
    (per_key_streams ~horizon events)

(* --- per-window tables ------------------------------------------------ *)

(* Per-window table: (instance interval, key) -> sub-aggregate state. *)
let from_stream agg window ~horizon events =
  match Window.hop_domain window with
  | None -> session_slots agg window ~horizon events
  | Some Window.Count -> count_slots agg window ~horizon events
  | Some Window.Time ->
      let instances = Interval.instances_until window ~horizon in
      List.fold_left
        (fun table e ->
          List.fold_left
            (fun table interval ->
              if Interval.contains interval e.Event.time then
                Slot_map.update
                  (interval, e.Event.key)
                  (function
                    | None -> Some (Combine.of_value agg e.Event.value)
                    | Some st -> Some (Combine.add st e.Event.value))
                  table
              else table)
            table instances)
        Slot_map.empty events

let window_rows agg window ~horizon events =
  match Window.hop_domain window with
  | None | Some Window.Count ->
      Slot_map.fold
        (fun (interval, key) state rows ->
          { Row.window; interval; key; value = Combine.finalize state }
          :: rows)
        (from_stream agg window ~horizon events)
        []
  | Some Window.Time ->
      (* kept as the original direct per-instance scan, not routed
         through the slot tables, so the time family has two
         independently-written evaluations in the repo *)
      let instances = Interval.instances_until window ~horizon in
      let keys = keys_of events in
      List.concat_map
        (fun interval ->
          List.filter_map
            (fun key ->
              let hits =
                List.filter
                  (fun e ->
                    String.equal e.Event.key key
                    && Interval.contains interval e.Event.time)
                  events
              in
              match state_of_events agg hits with
              | None -> None
              | Some state ->
                  Some
                    {
                      Row.window;
                      interval;
                      key;
                      value = Combine.finalize state;
                    })
            keys)
        instances

let run agg ws ~horizon events =
  let ws = Window.dedup ws in
  Row.sort (List.concat_map (fun w -> window_rows agg w ~horizon events) ws)

(* --- Batch execution of a full plan, sharing sub-aggregates. --- *)

let from_upstream window ~upstream ~upstream_table ~horizon =
  let instances = Interval.instances_until window ~horizon in
  List.fold_left
    (fun table interval ->
      let cover =
        Fw_window.Coverage.covering_set ~covered:window ~by:upstream interval
      in
      Slot_map.fold
        (fun (up_interval, key) state table ->
          if List.exists (Interval.equal up_interval) cover then
            Slot_map.update (interval, key)
              (function
                | None -> Some state
                | Some st -> Some (Combine.merge st state))
              table
          else table)
        upstream_table table)
    Slot_map.empty instances

let apply_filter plan events =
  match Plan.source_filter plan with
  | None -> events
  | Some pred ->
      List.filter
        (fun e ->
          Fw_plan.Predicate.eval pred ~key:e.Event.key ~value:e.Event.value
            ~time:e.Event.time)
        events

let run_plan plan ~horizon events =
  let agg = Plan.agg plan in
  let events = apply_filter plan events in
  let tables = Hashtbl.create 16 in
  (* window tables computed in plan order: inputs precede consumers *)
  let rows = ref [] in
  Array.iter
    (fun op ->
      match op with
      | Plan.Source | Plan.Filter _ | Plan.Multicast _ | Plan.Union _ -> ()
      | Plan.Win_agg { window; expose; _ } ->
          let table =
            match Plan.window_input plan window with
            | `Stream -> from_stream agg window ~horizon events
            | `Window upstream ->
                let upstream_table = Hashtbl.find tables upstream in
                from_upstream window ~upstream ~upstream_table ~horizon
          in
          Hashtbl.replace tables window table;
          if expose then
            Slot_map.iter
              (fun (interval, key) state ->
                rows :=
                  {
                    Row.window;
                    interval;
                    key;
                    value = Combine.finalize state;
                  }
                  :: !rows)
              table)
    (Plan.nodes plan);
  Row.sort !rows
