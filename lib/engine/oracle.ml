open Fw_window
module Aggregate = Fw_agg.Aggregate
module Combine = Fw_agg.Combine
module Plan = Fw_plan.Plan

let keys_of events =
  List.sort_uniq String.compare (List.map (fun e -> e.Event.key) events)

let window_rows agg window ~horizon events =
  let instances = Interval.instances_until window ~horizon in
  let keys = keys_of events in
  List.concat_map
    (fun interval ->
      List.filter_map
        (fun key ->
          let hits =
            List.filter
              (fun e ->
                String.equal e.Event.key key
                && Interval.contains interval e.Event.time)
              events
          in
          match hits with
          | [] -> None
          | first :: rest ->
              let state =
                List.fold_left
                  (fun st e -> Combine.add st e.Event.value)
                  (Combine.of_value agg first.Event.value)
                  rest
              in
              Some
                { Row.window; interval; key; value = Combine.finalize state })
        keys)
    instances

let run agg ws ~horizon events =
  let ws = Window.dedup ws in
  Row.sort (List.concat_map (fun w -> window_rows agg w ~horizon events) ws)

(* --- Batch execution of a full plan, sharing sub-aggregates. --- *)

module Slot = struct
  type t = Interval.t * string

  let compare (i1, k1) (i2, k2) =
    match Interval.compare i1 i2 with
    | 0 -> String.compare k1 k2
    | c -> c
end

module Slot_map = Map.Make (Slot)

(* Per-window table: (instance interval, key) -> sub-aggregate state. *)
let from_stream agg window ~horizon events =
  let instances = Interval.instances_until window ~horizon in
  List.fold_left
    (fun table e ->
      List.fold_left
        (fun table interval ->
          if Interval.contains interval e.Event.time then
            Slot_map.update
              (interval, e.Event.key)
              (function
                | None -> Some (Combine.of_value agg e.Event.value)
                | Some st -> Some (Combine.add st e.Event.value))
              table
          else table)
        table instances)
    Slot_map.empty events

let from_upstream window ~upstream ~upstream_table ~horizon =
  let instances = Interval.instances_until window ~horizon in
  List.fold_left
    (fun table interval ->
      let cover =
        Fw_window.Coverage.covering_set ~covered:window ~by:upstream interval
      in
      Slot_map.fold
        (fun (up_interval, key) state table ->
          if List.exists (Interval.equal up_interval) cover then
            Slot_map.update (interval, key)
              (function
                | None -> Some state
                | Some st -> Some (Combine.merge st state))
              table
          else table)
        upstream_table table)
    Slot_map.empty instances

let apply_filter plan events =
  match Plan.source_filter plan with
  | None -> events
  | Some pred ->
      List.filter
        (fun e ->
          Fw_plan.Predicate.eval pred ~key:e.Event.key ~value:e.Event.value
            ~time:e.Event.time)
        events

let run_plan plan ~horizon events =
  let agg = Plan.agg plan in
  let events = apply_filter plan events in
  let tables = Hashtbl.create 16 in
  (* window tables computed in plan order: inputs precede consumers *)
  let rows = ref [] in
  Array.iter
    (fun op ->
      match op with
      | Plan.Source | Plan.Filter _ | Plan.Multicast _ | Plan.Union _ -> ()
      | Plan.Win_agg { window; expose; _ } ->
          let table =
            match Plan.window_input plan window with
            | `Stream -> from_stream agg window ~horizon events
            | `Window upstream ->
                let upstream_table = Hashtbl.find tables upstream in
                from_upstream window ~upstream ~upstream_table ~horizon
          in
          Hashtbl.replace tables window table;
          if expose then
            Slot_map.iter
              (fun (interval, key) state ->
                rows :=
                  {
                    Row.window;
                    interval;
                    key;
                    value = Combine.finalize state;
                  }
                  :: !rows)
              table)
    (Plan.nodes plan);
  Row.sort !rows
