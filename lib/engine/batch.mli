(** Columnar event batch: the unit of vectorized execution.

    A batch holds a run of time-ordered events as three parallel
    columns (times, keys, values) over {!Fw_util.Vec} buffers, plus a
    sparse list of {e punctuation marks} interleaved at event
    positions: a mark [(at, wm)] asserts watermark [wm] between event
    [at - 1] and event [at].  Carrying punctuation inside the batch is
    what lets {!Stream_exec.feed_batch} amortize node dispatch across
    a whole batch without weakening watermark semantics — the engine
    splits the batch into segments at the marks and fires pending
    instances at exactly the per-event points.

    Batches are mutable accumulators meant for recycling: the sharded
    runner refills one per flush, the per-event [feed] wrapper reuses
    a single one-slot scratch batch.  {!reset} keeps the column
    storage.

    The columns must be pushed in event-time order ({!is_time_ordered}
    checks); {!Stream_exec.feed_batch} validates against its watermark
    before touching any state, so a late event in a batch is rejected
    atomically. *)

type t

(** One position of the interleaved event/punctuation sequence. *)
type slot = Ev of Event.t | Punct of int

val create : unit -> t

val push : t -> Event.t -> unit
(** Append one event to the columns. *)

val push_punct : t -> int -> unit
(** Append a punctuation mark at the current end of the columns: it
    fires after every event pushed so far and before any pushed later.
    Consecutive marks at one position coalesce to the largest
    watermark (watermarks are monotone, so only that one is
    observable). *)

val length : t -> int
(** Number of events (marks not counted). *)

val mark_count : t -> int
val is_empty : t -> bool
(** No events {e and} no marks. *)

val reset : t -> unit
(** Empty the batch, keeping column storage for refill. *)

val time : t -> int -> int
val key : t -> int -> string
val value : t -> int -> float
val event : t -> int -> Event.t

val mark : t -> int -> int * int
(** [mark b j] is the [j]-th punctuation as [(at, wm)]: watermark [wm]
    fires before event [at]. *)

val times : t -> int array
(** Backing column array; only indices [0 .. length - 1] are
    meaningful (see {!Fw_util.Vec.unsafe_data}). *)

val keys : t -> string array
val values : t -> float array

val of_events : Event.t list -> t
(** Events only, no punctuation. *)

val of_slots : slot list -> t
(** Build from an interleaved event/punctuation sequence. *)

val to_slots : t -> slot list
(** The interleaved sequence back, marks in position order. *)

val iter_slots : (slot -> unit) -> t -> unit
(** Visit events and punctuation in interleaved order — the per-event
    semantics a batched consumer must be equivalent to. *)

val is_time_ordered : t -> bool
(** Event times are non-decreasing along the columns. *)
