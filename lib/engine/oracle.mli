(** Batch oracle executor.

    Computes every window aggregate directly from the raw events by
    definition — one pass per (window, instance) — with no sharing and
    no incremental state.  Deliberately simple and obviously correct:
    the streaming executor and the rewritten plans are tested against
    it.

    All three window families are supported.  Time hops enumerate
    instances over the horizon; count hops enumerate each key's ordinal
    instances [[m·s, m·s+r)] over that key's horizon-clipped event
    stream (in {!Event.sort} order, the engine's feed order); session
    windows cluster each key's events by gap and emit the sessions
    whose deadline [last + gap] falls at or before the horizon. *)

val window_rows :
  Fw_agg.Aggregate.t ->
  Fw_window.Window.t ->
  horizon:int ->
  Event.t list ->
  Row.t list
(** Aggregate one window over all complete instances within the
    horizon; instances with no events produce no row. *)

val run :
  Fw_agg.Aggregate.t ->
  Fw_window.Window.t list ->
  horizon:int ->
  Event.t list ->
  Row.t list
(** All windows (deduplicated), rows sorted. *)

val apply_filter : Fw_plan.Plan.t -> Event.t list -> Event.t list
(** Drop the events rejected by the plan's source filter (identity when
    the plan has none). *)

val run_plan : Fw_plan.Plan.t -> horizon:int -> Event.t list -> Row.t list
(** Execute a plan in batch mode: each window aggregate materializes
    per-instance sub-aggregate states from its input (raw events or the
    covering set of its upstream window's states), and exposed windows
    contribute rows.  Validates the plan's sharing logic without the
    streaming machinery. *)
