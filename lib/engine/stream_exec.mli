(** Push-based streaming executor.

    Executes a {!Fw_plan.Plan.t} as a dataflow of operators, the way a
    stream processing engine would: events are pushed through the DAG
    in event-time order; window operators fire an instance when the
    watermark passes its upper bound; multicasts replicate items; the
    final union feeds the result sink.  Windows fed by another window
    consume that window's {e sub-aggregate emissions} instead of raw
    events — the shared computation the rewriting creates.

    Two execution {!mode}s are offered for window aggregates:

    - {!Naive} (the default): every event is folded into all pending
      instances containing it — O(r/s) states touched per event.  The
      per-window item counters of this mode match the paper's analytic
      cost model exactly, which the differential invariants pin.
    - {!Incremental}: raw events fold into one open {e per-slide pane}
      ({!Fw_agg.Pane}); sealed panes feed per-key sliding queues
      ({!Fw_agg.Swag}) so each event is touched O(1) amortized times
      regardless of r/s.  A window falls back to the per-instance path
      when panes don't apply: holistic aggregates (no constant-size
      sub-aggregate), non-aligned geometries (the instance doesn't tile
      into panes), or a window fed by another window (irregular
      sub-aggregate input).  Results are identical in both modes; the
      incremental mode's metrics charge the final-combine work (pane
      states merged per fired instance) rather than per-instance
      insertions.

    Watermarks are strictly monotone: feeding an event older than the
    current watermark raises {!Late_event} (the engine assumes ordered
    input; see {!Fw_workload.Event_gen} which produces ordered
    streams).

    {b Observability.}  Every node maintains {!Metrics.node_stats}
    (rows in/out as plain counter increments; instance fires, pane
    flushes and sliding-queue evictions on the firing path) in the
    run's {!Metrics.t}.  Activation latencies are sampled into a
    histogram — one clock pair per 16 firing activations, or every
    activation when a trace is attached to the metrics {e before}
    {!create} (each sampled activation then also records a span).
    Incremental-mode nodes that fall back to the per-instance path are
    counted with their reason ([holistic-aggregate], [window-fed-input]
    or [non-aligned-window]).  [~observe:false] skips all of it — the
    toggle exists so the bench [obs] section can price the
    instrumentation itself.

    {b Window families.}  Count hops ([R⟨r,s⟩], ROWS frames) run on a
    dedicated per-key ordinal operator in {e both} modes: instance [m]
    of key [k] covers that key's event ordinals [[m·s, m·s+r)] and
    fires the moment ordinal [m·s+r−1] arrives — watermark-free, so
    batched execution is structurally identical to per-event.  Count
    windows fed by an upstream count window (WCG rewrites) complete
    when the covering sub ending exactly at the instance's bound
    arrives.  Session windows ([S⟨gap⟩]) run a per-key gap-tracking
    operator: an event joins its key's open session iff it lands
    before [last + gap]; rotated/expired sessions emit at the first
    watermark past their deadline with interval [[first, last+gap)].
    In {!Incremental} mode both surface through the fallback metric
    with reasons [count-window] and [session-window]. *)

exception Late_event of Event.t

type mode = Naive | Incremental

type t

val create :
  ?metrics:Metrics.t ->
  ?mode:mode ->
  ?observe:bool ->
  ?spill:Fw_spill.Pool.t ->
  Fw_plan.Plan.t ->
  t
(** Raises [Invalid_argument] if the plan fails {!Fw_plan.Validate}.
    [mode] defaults to {!Naive}; [observe] defaults to [true].

    [spill] attaches a memory-budget pool: every operator's per-key
    state (pending window instances, pane sliding queues, count-window
    trackers, open sessions) then lives in budgeted
    {!Fw_spill.Store}s whose cold entries may be evicted to disk and
    faulted back in bit-identical on access — rows and cost-model
    counters are unaffected (the differential fuzzer's [spilled] path
    byte-compares them).  The pool is owned by the caller and must
    outlive the executor. *)

val feed : t -> Event.t -> unit
(** Push one event; may trigger window firings for instances that the
    event's timestamp proves complete.  Implemented as a batch of one
    ({!feed_batch} over a recycled one-slot scratch batch), so the two
    entry points cannot drift apart semantically. *)

val feed_batch : t -> Batch.t -> unit
(** Push a whole columnar batch with one amortized dispatch per plan
    node per segment, instead of one per event.  Punctuation marks
    inside the batch split it into segments; pending instances fire at
    exactly the marked points, and once more at the end of each
    segment (the last event's time), so watermark semantics are
    preserved mid-batch.

    Equivalence contract (pinned by [test/test_batch.ml] and the
    [batched-stream] differential path): any partition of an event
    stream into batches, with any placement of punctuation marks,
    yields byte-identical rows and bit-for-bit identical cost-model
    counters ({!Metrics.ingested}, {!Metrics.per_window}) versus the
    per-event {!feed}/{!advance} sequence, and the engine state at
    every punctuation boundary equals the per-event state — which is
    what makes mid-batch checkpoints recoverable
    ({!Fw_snap.Checkpoint}).  Per-node activation counts and sampled
    latency histograms may differ (fewer, larger activations).

    The batch is validated atomically against the watermark before any
    state changes: a late event anywhere in it raises {!Late_event}
    and leaves the executor untouched. *)

val advance : ?at_ns:int -> t -> int -> unit
(** Advance the watermark without an event (a punctuation): all
    instances ending at or before the time fire.  [at_ns] is the wall
    clock when the punctuation was issued (the sharding driver stamps
    it before enqueueing, so queue wait shows up in the fire-delay
    histograms); defaults to now when observing. *)

val close : t -> horizon:int -> Row.t list
(** Advance to the horizon, flush, and return all result rows emitted
    so far (sorted).  The executor must not be fed afterwards. *)

val run :
  ?metrics:Metrics.t ->
  ?mode:mode ->
  ?observe:bool ->
  ?spill:Fw_spill.Pool.t ->
  Fw_plan.Plan.t ->
  horizon:int ->
  Event.t list ->
  Row.t list
(** Convenience: create, feed all (sorted) events with [time < horizon],
    close. *)

(** {2 Snapshot support}

    A public, serializable mirror of every mutable cell of a running
    executor, consumed by the checkpoint subsystem ({!Fw_snap}).
    {!export} captures the state verbatim — pending instance states in
    firing order, the pane ring position, each per-key sliding queue's
    exact internal shape — and {!import} restores it onto the same
    (plan, mode): the restored executor's subsequent rows and metrics
    are byte-identical to the original's, float rounding included. *)

type node_export =
  | X_stateless  (** source / filter / multicast / union *)
  | X_win of {
      x_pending : (int * int * string * Fw_agg.Combine.state * int) list;
          (** (hi, lo, key, state, items folded), in firing order *)
      x_wm : int;
    }
  | X_pane of {
      x_cur_pane : int;
      x_p_wm : int;
      x_open_pane : Fw_agg.Pane.export;
      x_queues : (string * Fw_agg.Swag.export) list;  (** sorted by key *)
    }
  | X_cwin of {
      xc_keys : (string * int * (int * Fw_agg.Combine.state * int) list) list;
          (** (key, ordinal high-water, [(hi, state, items)] ascending),
              sorted by key *)
    }
  | X_session of {
      xs_open : (string * int * int * Fw_agg.Combine.state * int) list;
          (** open sessions (key, first, last, state, items), sorted by
              key *)
      xs_pending : (int * int * string * Fw_agg.Combine.state * int) list;
          (** rotated sessions awaiting their deadline
              (hi, lo, key, state, items), in firing order *)
      xs_wm : int;
    }

type export = {
  x_mode : mode;
  x_source_wm : int;
  x_rows : Row.t list;  (** rows emitted so far, in emission order *)
  x_nodes : node_export array;  (** same index as the plan's nodes *)
}

val export : ?rows:bool -> t -> export
(** Raises [Invalid_argument] on a closed executor.  [~rows:false]
    leaves [x_rows] empty — the checkpoint runtime persists rows
    incrementally to a side log instead of re-serializing the whole
    output on every snapshot, which would make checkpoints O(rows
    emitted so far). *)

val row_count : t -> int
(** Rows emitted so far (cheap); [row t i] reads the [i]-th in emission
    order.  Lets the checkpoint runtime drain newly-emitted rows after
    each feed without materializing the full list. *)

val row : t -> int -> Row.t

val import :
  ?metrics:Metrics.t ->
  ?observe:bool ->
  ?spill:Fw_spill.Pool.t ->
  Fw_plan.Plan.t ->
  export ->
  t
(** Rebuild an executor from an export.  The plan must be the one the
    export was taken from (the snapshot codec guards this with a plan
    fingerprint); raises [Invalid_argument] on a node-shape mismatch.
    Counters in [metrics] are {e not} restored here — the caller
    replays them (see {!Fw_snap.Recover}).  [spill] as in {!create};
    an export is always self-contained (spilled entries are re-absorbed
    at {!export} time), so recovery never reads spill files. *)

(** {2 Instance arithmetic}

    Exposed for boundary testing: which window instances an event or a
    sub-aggregate interval lands in is where off-by-one bugs live. *)

val instances_containing : Fw_window.Window.t -> int -> int list
(** Instance indices [m] of the window whose interval
    [[m·s, m·s + r)] contains the time — ascending.  Instances with
    negative indices do not exist, so a time [t < r] belongs to fewer
    than r/s instances (stream start ramp-up). *)

val instances_enclosing : Fw_window.Window.t -> lo:int -> hi:int -> int list
(** Instance indices of the window whose interval includes [[lo, hi)]
    {e entirely} — ascending; empty when [hi - lo > r].  Used to fold a
    sub-aggregate emission into every instance it is a fragment of. *)
