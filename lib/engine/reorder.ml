module Counter = Fw_obs.Counter
module Gauge = Fw_obs.Gauge

type stats = { buffered_peak : int; released : int; dropped_late : int }

module Time_map = Map.Make (Int)

(* Registry cells mirroring the [stats] record, so late-data behavior
   shows up in `--stats` exports next to the engine metrics. *)
type obs_cells = {
  released_c : Counter.t;
  dropped_c : Counter.t;
  peak_g : Gauge.t;
}

type t = {
  lateness : int;
  exec : Stream_exec.t;
  obs : obs_cells option;  (* None when ~observe:false *)
  mutable buffer : Event.t list Time_map.t;  (* newest first per time *)
  mutable buffered : int;
  mutable peak : int;
  mutable released : int;
  mutable dropped : int;
  mutable frontier : int;  (* all times < frontier already released *)
  mutable max_seen : int;
}

let make_obs ~observe metrics =
  if not observe then None
  else
    let registry = Metrics.registry metrics in
    Some
      {
        released_c =
          Fw_obs.Registry.counter registry "reorder_released_total"
            ~help:"Events released downstream in timestamp order";
        dropped_c =
          Fw_obs.Registry.counter registry "reorder_dropped_late_total"
            ~help:"Events dropped behind the released frontier";
        peak_g =
          Fw_obs.Registry.gauge registry "reorder_buffered_peak"
            ~help:"High-water mark of the reorder buffer";
      }

let create ~lateness ?mode ?(observe = true) plan ?metrics () =
  if lateness < 0 then invalid_arg "Reorder.create: negative lateness";
  (* Materialize the metrics even when the caller passes none: the
     reorder counters live in the same registry as the engine's. *)
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let obs = make_obs ~observe metrics in
  {
    lateness;
    exec = Stream_exec.create ~metrics ?mode ~observe plan;
    obs;
    buffer = Time_map.empty;
    buffered = 0;
    peak = 0;
    released = 0;
    dropped = 0;
    frontier = 0;
    max_seen = 0;
  }

let release_until t bound =
  let ready, rest = Time_map.partition (fun time _ -> time < bound) t.buffer in
  t.buffer <- rest;
  Time_map.iter
    (fun _ events ->
      List.iter
        (fun e ->
          Stream_exec.feed t.exec e;
          t.released <- t.released + 1;
          (match t.obs with
          | Some o -> Counter.inc o.released_c
          | None -> ());
          t.buffered <- t.buffered - 1)
        (List.rev events))
    ready;
  if bound > t.frontier then t.frontier <- bound

let feed t e =
  if e.Event.time < t.frontier then begin
    t.dropped <- t.dropped + 1;
    match t.obs with Some o -> Counter.inc o.dropped_c | None -> ()
  end
  else begin
    t.buffer <-
      Time_map.update e.Event.time
        (function None -> Some [ e ] | Some es -> Some (e :: es))
        t.buffer;
    t.buffered <- t.buffered + 1;
    if t.buffered > t.peak then begin
      t.peak <- t.buffered;
      match t.obs with
      | Some o -> Gauge.set o.peak_g (float_of_int t.peak)
      | None -> ()
    end;
    t.max_seen <- max t.max_seen e.Event.time;
    release_until t (t.max_seen - t.lateness)
  end

let close t ~horizon =
  release_until t max_int;
  let rows = Stream_exec.close t.exec ~horizon in
  ( rows,
    { buffered_peak = t.peak; released = t.released; dropped_late = t.dropped }
  )

let run ~lateness ?mode ?observe ?metrics plan ~horizon events =
  let t = create ~lateness ?mode ?observe plan ?metrics () in
  List.iter (fun e -> if e.Event.time < horizon then feed t e) events;
  close t ~horizon

(* --- snapshot support ---------------------------------------------- *)

type export = {
  x_lateness : int;
  x_groups : Event.t list list;
  x_peak : int;
  x_released : int;
  x_dropped : int;
  x_frontier : int;
  x_max_seen : int;
  x_exec : Stream_exec.export;
}

let export t =
  {
    x_lateness = t.lateness;
    x_groups = List.map snd (Time_map.bindings t.buffer);
    x_peak = t.peak;
    x_released = t.released;
    x_dropped = t.dropped;
    x_frontier = t.frontier;
    x_max_seen = t.max_seen;
    x_exec = Stream_exec.export t.exec;
  }

let import ?metrics ?(observe = true) plan x =
  if x.x_lateness < 0 then invalid_arg "Reorder.import: negative lateness";
  if x.x_peak < 0 || x.x_released < 0 || x.x_dropped < 0 then
    invalid_arg "Reorder.import: negative statistic";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let exec = Stream_exec.import ~metrics ~observe plan x.x_exec in
  let buffer, buffered =
    List.fold_left
      (fun (m, n) group ->
        match group with
        | [] -> invalid_arg "Reorder.import: empty buffer group"
        | e :: _ ->
            if
              List.exists (fun e' -> e'.Event.time <> e.Event.time) group
              || Time_map.mem e.Event.time m
            then invalid_arg "Reorder.import: malformed buffer grouping";
            (Time_map.add e.Event.time group m, n + List.length group))
      (Time_map.empty, 0) x.x_groups
  in
  let obs = make_obs ~observe metrics in
  (match obs with
  | Some o -> Gauge.set o.peak_g (float_of_int x.x_peak)
  | None -> ());
  {
    lateness = x.x_lateness;
    exec;
    obs;
    buffer;
    buffered;
    peak = x.x_peak;
    released = x.x_released;
    dropped = x.x_dropped;
    frontier = x.x_frontier;
    max_seen = x.x_max_seen;
  }
