open Fw_window
module Combine = Fw_agg.Combine
module Pane = Fw_agg.Pane
module Swag = Fw_agg.Swag
module Aggregate = Fw_agg.Aggregate
module Vec = Fw_util.Vec
module Plan = Fw_plan.Plan
module Validate = Fw_plan.Validate
module Counter = Fw_obs.Counter
module Clock = Fw_obs.Clock
module Store = Fw_spill.Store
module Bin = Fw_spill.Bin
module Bincodec = Fw_agg.Bincodec

exception Late_event of Event.t

type mode = Naive | Incremental

(* Raw events travel only through the columnar batch path
   ([bdeliver] below); the per-message path carries the irregular
   traffic — sub-aggregate emissions and watermarks. *)
type item =
  | Sub of {
      window : Window.t;
      interval : Interval.t;
      key : string;
      state : Combine.state;
    }

type msg = Item of item | Watermark of int

(* Pending instances keyed so that firing pops from the front. *)
module Fire_key = struct
  type t = { hi : int; lo : int; key : string }

  let compare a b =
    match Int.compare a.hi b.hi with
    | 0 -> (
        match Int.compare a.lo b.lo with
        | 0 -> String.compare a.key b.key
        | c -> c)
    | c -> c
end

module Pending = Map.Make (Fire_key)
module Imap = Map.Make (Int)

(* Resident fire index: the (hi, key) pairs with a pending instance,
   kept out of the spill store so a watermark sweep never faults keys
   that have nothing due.  For hop windows [lo = hi - range] always, so
   ascending (hi, key) is exactly the historical ascending
   (hi, lo, key) fire order. *)
module Fset = Set.Make (struct
  type t = int * string

  let compare (h1, k1) (h2, k2) =
    match Int.compare h1 h2 with 0 -> String.compare k1 k2 | c -> c
end)

(* Per-instance execution state: every event is folded into all pending
   instances containing it (O(r/s) work per event) and an instance's
   state is complete when it fires.  This is the cost the paper's model
   prices, and the only path that supports holistic aggregates and
   sub-aggregate (window-over-window) inputs.

   The per-key map of pending instances (keyed by instance [hi]) lives
   in a {!Fw_spill.Store}: resident by default, spillable to disk under
   a memory budget. *)
type win_state = {
  window : Window.t;
  w_keys : (Combine.state * int) Imap.t Store.t;
      (** per key: sub-aggregate state and the number of items folded
          into it, per pending instance (keyed by instance [hi]) *)
  mutable w_fire : Fset.t;
  mutable wm : int;
}

(* Pane-based incremental execution state: raw events fold into the one
   open per-slide pane (O(1) per event); sealed panes feed per-key
   sliding queues ({!Fw_agg.Swag}) that answer each instance's combined
   state in O(1) amortized. *)
type pane_state = {
  p_window : Window.t;
  slide : int;
  k : int;  (** panes per instance: r / s *)
  open_pane : Pane.t;  (** accumulates pane [cur_pane*s, (cur_pane+1)*s) *)
  mutable cur_pane : int;
  queues : Swag.t Store.t;
  mutable p_wm : int;
}

(* Count-window (ROWS frame) execution state: instance [m] of key [k]
   covers that key's event {e ordinals} [[m·s, m·s + r)], so the
   operator is watermark-free — an instance completes, and fires, the
   moment ordinal [m·s + r − 1] of its key arrives.  Per-key pending
   instances are keyed by their ordinal upper bound [hi] ([lo] is
   always [hi − r]).  Sub-fed nodes (WCG rewrites within the count
   domain) track the key's ordinal high-water from arriving
   sub-intervals instead: upstream emits per key in ascending [hi], so
   the final covering sub of an instance — the one ending exactly at
   the instance's [hi] — arrives last and doubles as the completion
   signal. *)
type cwin_key = {
  mutable seen : int;  (** ordinal high-water: events seen (stream-fed)
                           or max sub interval end (sub-fed) *)
  mutable kpend : (Combine.state * int) Imap.t;  (** keyed by instance hi *)
}

type cwin_state = {
  c_window : Window.t;
  c_keys : cwin_key Store.t;
}

(* Session-window execution state: one open (growable) session per key
   plus rotated/expired sessions awaiting their deadline.  Join and
   rotation decisions depend only on the event sequence (an event at
   [t] joins iff [t < last + gap]), never on watermarks, so coalescing
   per-event watermarks to batch-segment boundaries cannot change
   which sessions exist — only when they are emitted, which [close]'s
   row sort makes invisible. *)
type open_session = {
  mutable s_first : int;
  mutable s_last : int;
  mutable s_state : Combine.state;
  mutable s_items : int;
}

type session_state = {
  s_window : Window.t;
  s_gap : int;
  s_open : open_session Store.t;
  mutable s_deadlines : Fset.t;
      (** resident index of (last + gap, key) per open session, so a
          watermark sweep faults in only the keys actually expiring *)
  mutable s_pending : (Combine.state * int) Pending.t;
      (** rotated/expired sessions, keyed {hi = last + gap; lo = first} *)
  mutable s_wm : int;
}

(* --- spill codecs for operator state -------------------------------- *)

(* Serializers for the per-key values the engine stores: evicted
   entries are written with exactly these (floats as IEEE bit
   patterns), so a faulted entry is bit-identical to the evicted one.
   Weights are resident-size estimates that drive eviction accounting
   only, never results. *)

let w_instances b im =
  Bin.w_list b
    (fun b (hi, (state, items)) ->
      Bin.w_i64 b hi;
      Bincodec.w_state b state;
      Bin.w_i64 b items)
    (Imap.bindings im)

let r_instances r =
  List.fold_left
    (fun acc (hi, st, items) -> Imap.add hi (st, items) acc)
    Imap.empty
    (Bin.r_list r (fun r ->
         let hi = Bin.r_i64 r in
         let st = Bincodec.r_state r in
         let items = Bin.r_i64 r in
         (hi, st, items)))

let instances_weight im =
  Imap.fold (fun _ (st, _) acc -> acc + 64 + Bincodec.state_weight st) im 48

let win_codec : (Combine.state * int) Imap.t Store.codec =
  {
    Store.kind = Bincodec.kind_win;
    enc = w_instances;
    dec = r_instances;
    weight = instances_weight;
  }

let cwin_codec : cwin_key Store.codec =
  {
    Store.kind = Bincodec.kind_cwin;
    enc =
      (fun b kc ->
        Bin.w_i64 b kc.seen;
        w_instances b kc.kpend);
    dec =
      (fun r ->
        let seen = Bin.r_i64 r in
        let kpend = r_instances r in
        { seen; kpend });
    weight = (fun kc -> 16 + instances_weight kc.kpend);
  }

let session_codec : open_session Store.codec =
  {
    Store.kind = Bincodec.kind_session;
    enc =
      (fun b os ->
        Bin.w_i64 b os.s_first;
        Bin.w_i64 b os.s_last;
        Bincodec.w_state b os.s_state;
        Bin.w_i64 b os.s_items);
    dec =
      (fun r ->
        let s_first = Bin.r_i64 r in
        let s_last = Bin.r_i64 r in
        let s_state = Bincodec.r_state r in
        let s_items = Bin.r_i64 r in
        { s_first; s_last; s_state; s_items });
    weight = (fun os -> 64 + Bincodec.state_weight os.s_state);
  }

(* Flat operator-state array: one cell per plan node, dispatched with a
   single match in [deliver] instead of an array of closures. *)
type node_state =
  | N_forward  (** source, multicast *)
  | N_filter of Fw_plan.Predicate.t
  | N_union of { sink : bool }
  | N_win of win_state
  | N_pane of pane_state
  | N_cwin of cwin_state
  | N_session of session_state

type t = {
  plan : Plan.t;
  agg : Aggregate.t;
  mode : mode;
  spill : Fw_spill.Pool.t option;
      (** memory-budget pool shared by every operator store (owned by
          the caller, never closed here); [None] = all-resident *)
  metrics : Metrics.t;
  states : node_state array;
  obs : Metrics.node_stats array;  (** per-node stats, same index as states *)
  observe : bool;
  sample_mask : int;
      (** activation-latency sampling: clock every (mask+1)-th firing *)
  subs : int array array;
  sources : int array;
  mutable source_wm : int;
  mutable wm_wall : int;
      (** wall ns when the current watermark's broadcast began (0 until
          the first observed broadcast) — the fire-delay baseline.
          Deliberately absent from the export: it is transient
          wall-clock state, and checkpoints stay deterministic. *)
  rows : Row.t Vec.t;
  scratch : Batch.t;  (** reused one-event batch backing the [feed] wrapper *)
  mutable iota : int array;  (** identity selection [0; 1; ...] for batch roots *)
  mutable closed : bool;
}

let subscribers plan =
  let nodes = Plan.nodes plan in
  let subs = Array.make (Array.length nodes) [] in
  Array.iteri
    (fun id op ->
      let inputs =
        match op with
        | Plan.Source -> []
        | Plan.Multicast i -> [ i ]
        | Plan.Filter { input; _ } -> [ input ]
        | Plan.Win_agg { input; _ } -> [ input ]
        | Plan.Union is -> is
      in
      List.iter (fun i -> subs.(i) <- id :: subs.(i)) inputs)
    nodes;
  Array.map (fun l -> Array.of_list (List.rev l)) subs

(* Instance indices of [w] whose interval contains time [t].  Note that
   OCaml's [/] truncates toward zero, so the lower bound must special-case
   [t < r] instead of relying on [(t - r) / s]. *)
let instances_containing w t =
  let r = Window.range w and s = Window.slide w in
  let hi_m = t / s in
  let lo_m = if t < r then 0 else ((t - r) / s) + 1 in
  let rec collect m acc =
    if m > hi_m then List.rev acc
    else
      let lo = m * s in
      if lo <= t && t < lo + r then collect (m + 1) (m :: acc)
      else collect (m + 1) acc
  in
  collect lo_m []

(* Instance indices of [w] whose interval includes [u, v) entirely. *)
let instances_enclosing w ~lo:u ~hi:v =
  let r = Window.range w and s = Window.slide w in
  if v - u > r then []
  else
    let hi_m = u / s in
    let lo_m = max 0 (if v - r <= 0 then 0 else ((v - r - 1) / s) + 1) in
    let rec collect m acc =
      if m > hi_m then List.rev acc
      else
        let lo = m * s in
        if lo <= u && v <= lo + r then collect (m + 1) (m :: acc)
        else collect (m + 1) acc
    in
    collect lo_m []

(* Span recording for a window activation: latencies are sampled (the
   clock call is the only instrumentation cost that isn't a plain field
   increment), every 16th activation normally, every activation when a
   trace is attached so short traced runs aren't empty. *)
let trace_span t ~name ~id ~start_ns ~dur_ns ~items_in ~items_out ~window =
  match Metrics.trace t.metrics with
  | None -> ()
  | Some tr ->
      Fw_obs.Trace.record tr
        {
          Fw_obs.Trace.name;
          node = id;
          start_ns;
          dur_ns;
          items_in;
          items_out;
          attrs = [ ("window", Window.to_string window) ];
        }

(* --- dispatch ------------------------------------------------------- *)

let rec deliver t id msg =
  (match msg with
  | Item _ -> if t.observe then Counter.inc t.obs.(id).Metrics.rows_in
  | Watermark _ -> ());
  match t.states.(id) with
  | N_forward -> forward t id msg
  | N_filter _ ->
      (* raw events are filtered on the columnar path ([bdeliver]);
         sub-aggregates and watermarks pass through *)
      forward t id msg
  | N_union { sink } ->
      (* The union merges its inputs; when it is the plan output it also
         acts as the result sink.  (Watermarks of the separate inputs
         all derive from the single source sweep, so they carry the same
         value and are simply forwarded.) *)
      (match msg with
      | Item (Sub { window; interval; key; state }) when sink ->
          Vec.push t.rows
            { Row.window; interval; key; value = Combine.finalize state }
      | Item (Sub _) | Watermark _ -> ());
      forward t id msg
  | N_win st -> win_deliver t id st msg
  | N_pane ps -> pane_deliver t id ps msg
  | N_cwin st -> cwin_deliver t id st msg
  | N_session st -> session_deliver t id st msg

and forward t id msg =
  (match msg with
  | Item _ -> if t.observe then Counter.inc t.obs.(id).Metrics.rows_out
  | Watermark _ -> ());
  let subs = t.subs.(id) in
  for i = 0 to Array.length subs - 1 do
    deliver t subs.(i) msg
  done

(* --- per-instance (naive) window operator --------------------------- *)

(* Items are tallied per pending instance and reported to the metrics
   when the instance fires, so the counters measure exactly the work of
   {e complete} instances — the quantity the analytic cost model prices.
   Insertions into instances that straddle the closing horizon are not
   charged. *)
and win_add_instance st m key state_update =
  let lo = m * Window.slide st.window in
  let hi = lo + Window.range st.window in
  st.w_fire <- Fset.add (hi, key) st.w_fire;
  Store.update st.w_keys key (fun prev ->
      let im = match prev with None -> Imap.empty | Some im -> im in
      Imap.update hi
        (function
          | None -> Some (state_update None, 1)
          | Some (s, items) -> Some (state_update (Some s), items + 1))
        im)

(* Pop the due instance [hi] of [key] out of the store: the extracted
   state is an immutable value, so it can be forwarded after the store
   operations complete — no pin needed. *)
and win_extract st key hi =
  match Store.find st.w_keys key with
  | None -> invalid_arg "Stream_exec: fire index out of sync with store"
  | Some im ->
      let entry = Imap.find hi im in
      let im' = Imap.remove hi im in
      if Imap.is_empty im' then Store.remove st.w_keys key
      else Store.set st.w_keys key im';
      entry

and win_fire t id st wm =
  (* Cheap emptiness probe first: the clock and the counters only move
     when at least one instance actually fires.  The probe reads the
     resident fire index, so a watermark that fires nothing touches no
     spilled state. *)
  match Fset.min_elt_opt st.w_fire with
  | Some (hi0, _) when hi0 <= wm ->
      let ns = t.obs.(id) in
      let sampled = t.observe && ns.Metrics.activations land t.sample_mask = 0 in
      ns.Metrics.activations <- ns.Metrics.activations + 1;
      let t0 = if sampled then Clock.now_ns () else 0 in
      let fired = ref 0 and items_tot = ref 0 in
      let rec go () =
        match Fset.min_elt_opt st.w_fire with
        | Some ((hi, key) as fk) when hi <= wm ->
            st.w_fire <- Fset.remove fk st.w_fire;
            let state, items = win_extract st key hi in
            Metrics.record t.metrics st.window items;
            incr fired;
            items_tot := !items_tot + items;
            let interval =
              Interval.make ~lo:(hi - Window.range st.window) ~hi
            in
            forward t id
              (Item (Sub { window = st.window; interval; key; state }));
            go ()
        | Some _ | None -> ()
      in
      go ();
      if t.observe then begin
        Counter.add ns.Metrics.fires !fired;
        if sampled then begin
          let dur = Clock.elapsed_ns ~since:t0 in
          Fw_obs.Histogram.record ns.Metrics.fire_ns dur;
          if t.wm_wall > 0 then
            Fw_obs.Histogram.record ns.Metrics.fire_delay_ns
              (max 0 (t0 - t.wm_wall));
          trace_span t ~name:"win-fire" ~id ~start_ns:t0 ~dur_ns:dur
            ~items_in:!items_tot ~items_out:!fired ~window:st.window
        end
      end
  | Some _ | None -> ()

and win_deliver t id st msg =
  match msg with
  | Item (Sub { interval; key; state; _ }) ->
      List.iter
        (fun m ->
          win_add_instance st m key (function
            | None -> state
            | Some s -> Combine.merge s state))
        (instances_enclosing st.window ~lo:(Interval.lo interval)
           ~hi:(Interval.hi interval))
  | Watermark w ->
      if w > st.wm then begin
        st.wm <- w;
        win_fire t id st w;
        forward t id (Watermark w)
      end

(* --- pane-based incremental window operator ------------------------- *)

(* Fire instance [m] = panes [m, m+k): evict slid-out panes from every
   key's queue, emit one row per key still holding data, and drop keys
   whose queues drained.  The metrics record the final-combine work (the
   number of pane states merged per fired instance). *)
and fire_pane t id ps m =
  let lo = m * ps.slide in
  let interval = Interval.make ~lo ~hi:(lo + Window.range ps.p_window) in
  let items = ref 0 in
  let evicted = ref 0 in
  let dead = ref [] in
  (* [Store.iter] pins the visited entry, so the in-place [Swag.slide]
     and the downstream delivery (which may touch other stores of the
     same pool) can never race an eviction of the queue being slid. *)
  Store.iter
    (fun key q ->
      let before = Swag.length q in
      let answer = Swag.slide q ~below:m in
      evicted := !evicted + before - Swag.length q;
      match answer with
      | None -> dead := key :: !dead
      | Some state ->
          items := !items + Swag.length q;
          forward t id
            (Item (Sub { window = ps.p_window; interval; key; state })))
    ps.queues;
  List.iter (Store.remove ps.queues) !dead;
  if t.observe then begin
    let ns = t.obs.(id) in
    Counter.add ns.Metrics.swag_evictions !evicted;
    if !items > 0 then Counter.inc ns.Metrics.fires
  end;
  if !items > 0 then Metrics.record t.metrics ps.p_window !items

(* Seal every pane fully to the left of [upto], interleaving seals with
   the instance firings they complete so each queue holds at most [k]
   panes per key when queried. *)
and pane_roll t id ps ~upto =
  (* Same emptiness probe as [win_fire]: no seal pending, no clock. *)
  if (ps.cur_pane + 1) * ps.slide <= upto then begin
    let ns = t.obs.(id) in
    let sampled = t.observe && ns.Metrics.activations land t.sample_mask = 0 in
    ns.Metrics.activations <- ns.Metrics.activations + 1;
    let t0 = if sampled then Clock.now_ns () else 0 in
    let fires0 = Counter.get ns.Metrics.fires in
    let flushed = ref 0 in
    while (ps.cur_pane + 1) * ps.slide <= upto do
      let p = ps.cur_pane in
      if not (Pane.is_empty ps.open_pane) then begin
        Pane.iter
          (fun key state ->
            Store.pinned ps.queues key
              ~init:(fun () -> Swag.create t.agg)
              (fun q -> Swag.push q ~idx:p state))
          ps.open_pane;
        Pane.clear ps.open_pane;
        incr flushed
      end;
      let m = p + 1 - ps.k in
      if m >= 0 then fire_pane t id ps m;
      ps.cur_pane <- p + 1
    done;
    if t.observe then begin
      Counter.add ns.Metrics.pane_flushes !flushed;
      if sampled then begin
        let dur = Clock.elapsed_ns ~since:t0 in
        Fw_obs.Histogram.record ns.Metrics.fire_ns dur;
        if t.wm_wall > 0 then
          Fw_obs.Histogram.record ns.Metrics.fire_delay_ns
            (max 0 (t0 - t.wm_wall));
        trace_span t ~name:"pane-roll" ~id ~start_ns:t0 ~dur_ns:dur
          ~items_in:!flushed
          ~items_out:(Counter.get ns.Metrics.fires - fires0)
          ~window:ps.p_window
      end
    end
  end

and pane_deliver t id ps msg =
  match msg with
  | Item (Sub _) ->
      (* [create] only assigns pane states to windows reading the raw
         stream. *)
      invalid_arg "Stream_exec: pane-mode window fed sub-aggregates"
  | Watermark w ->
      if w > ps.p_wm then begin
        ps.p_wm <- w;
        pane_roll t id ps ~upto:w;
        forward t id (Watermark w)
      end

(* --- count-window (ROWS frame) operator ----------------------------- *)

(* All access to a key's tracker happens under a pin: the callback
   mutates [kc] in place and [cwin_fire] forwards downstream mid-access
   (which may touch other stores of the same pool), so the tracker must
   not be evictable while the callback runs. *)
and cwin_with_key st key f =
  Store.pinned st.c_keys key
    ~init:(fun () -> { seen = 0; kpend = Imap.empty })
    f

and cwin_fold st kc m state_update =
  let hi = (m * Window.slide st.c_window) + Window.range st.c_window in
  kc.kpend <-
    Imap.update hi
      (function
        | None -> Some (state_update None, 1)
        | Some (s, items) -> Some (state_update (Some s), items + 1))
      kc.kpend

(* Fire every pending instance of [key] whose ordinal upper bound has
   been reached; a {e complete} stream-fed instance folded exactly [r]
   items and a sub-fed one exactly its covering multiplier, so the
   metrics measure the same quantity the cost model prices.
   Incomplete instances (the key never reaches [hi]) never fire. *)
and cwin_fire t id st key kc ~upto =
  match Imap.min_binding_opt kc.kpend with
  | Some (hi0, _) when hi0 <= upto ->
      let ns = t.obs.(id) in
      ns.Metrics.activations <- ns.Metrics.activations + 1;
      let fired = ref 0 in
      let rec go () =
        match Imap.min_binding_opt kc.kpend with
        | Some (hi, (state, items)) when hi <= upto ->
            kc.kpend <- Imap.remove hi kc.kpend;
            Metrics.record t.metrics st.c_window items;
            incr fired;
            let interval =
              Interval.make ~lo:(hi - Window.range st.c_window) ~hi
            in
            forward t id
              (Item (Sub { window = st.c_window; interval; key; state }));
            go ()
        | Some _ | None -> ()
      in
      go ();
      if t.observe then Counter.add ns.Metrics.fires !fired
  | Some _ | None -> ()

and cwin_deliver t id st msg =
  match msg with
  | Item (Sub { interval; key; state; _ }) ->
      (* Sub intervals live in the same per-key ordinal space: fold
         into every enclosing downstream instance, then advance the
         key's high-water to the sub's end. *)
      cwin_with_key st key (fun kc ->
          List.iter
            (fun m ->
              cwin_fold st kc m (function
                | None -> state
                | Some s -> Combine.merge s state))
            (instances_enclosing st.c_window ~lo:(Interval.lo interval)
               ~hi:(Interval.hi interval));
          if Interval.hi interval > kc.seen then
            kc.seen <- Interval.hi interval;
          cwin_fire t id st key kc ~upto:kc.seen)
  | Watermark w ->
      (* count instances are watermark-free; punctuation passes through
         for any time-domain consumers downstream of the union *)
      forward t id (Watermark w)

(* --- session-window operator ----------------------------------------- *)

(* Rotate [key]'s open session into the pending (deadline-ordered)
   map. *)
and session_rotate st key os =
  st.s_deadlines <- Fset.remove (os.s_last + st.s_gap, key) st.s_deadlines;
  Store.remove st.s_open key;
  let fk = { Fire_key.hi = os.s_last + st.s_gap; lo = os.s_first; key } in
  st.s_pending <- Pending.add fk (os.s_state, os.s_items) st.s_pending

(* An event at [tm] joins its key's open session iff it lands strictly
   before the session's deadline [last + gap]; otherwise the old
   session is rotated out and a fresh one opens.  Purely event-driven:
   no watermark can change this decision.  The find → mutate → [set]
   sequence follows the store contract; the deadline index tracks every
   [s_last] move. *)
and session_add t st key tm value =
  match Store.find st.s_open key with
  | Some os when tm < os.s_last + st.s_gap ->
      if tm > os.s_last then begin
        st.s_deadlines <-
          Fset.remove (os.s_last + st.s_gap, key) st.s_deadlines;
        os.s_last <- tm;
        st.s_deadlines <- Fset.add (tm + st.s_gap, key) st.s_deadlines
      end;
      os.s_state <- Combine.add os.s_state value;
      os.s_items <- os.s_items + 1;
      Store.set st.s_open key os
  | prev ->
      (match prev with Some os -> session_rotate st key os | None -> ());
      Store.set st.s_open key
        {
          s_first = tm;
          s_last = tm;
          s_state = Combine.of_value t.agg value;
          s_items = 1;
        };
      st.s_deadlines <- Fset.add (tm + st.s_gap, key) st.s_deadlines

(* Watermark [wm]: first expire open sessions whose deadline passed
   (no future event has time < wm, so they can never be joined again),
   then emit every pending session whose deadline is due, in ascending
   (deadline, first, key) order.  Expiry walks the resident deadline
   index, so only the keys actually expiring are faulted in — a
   watermark sweep over a mostly-idle key space touches no spilled
   state. *)
and session_advance t id st wm =
  let rec expire () =
    match Fset.min_elt_opt st.s_deadlines with
    | Some ((dl, key) as e) when dl <= wm ->
        (match Store.find st.s_open key with
        | Some os when os.s_last + st.s_gap = dl -> session_rotate st key os
        | Some _ | None ->
            (* defensive: a stale index entry must not loop forever *)
            st.s_deadlines <- Fset.remove e st.s_deadlines);
        expire ()
    | Some _ | None -> ()
  in
  expire ();
  match Pending.min_binding_opt st.s_pending with
  | Some (fk0, _) when fk0.Fire_key.hi <= wm ->
      let ns = t.obs.(id) in
      ns.Metrics.activations <- ns.Metrics.activations + 1;
      let fired = ref 0 in
      let rec go () =
        match Pending.min_binding_opt st.s_pending with
        | Some (fk, (state, items)) when fk.Fire_key.hi <= wm ->
            st.s_pending <- Pending.remove fk st.s_pending;
            Metrics.record t.metrics st.s_window items;
            incr fired;
            let interval =
              Interval.make ~lo:fk.Fire_key.lo ~hi:fk.Fire_key.hi
            in
            forward t id
              (Item
                 (Sub
                    {
                      window = st.s_window;
                      interval;
                      key = fk.Fire_key.key;
                      state;
                    }));
            go ()
        | Some _ | None -> ()
      in
      go ();
      if t.observe then Counter.add ns.Metrics.fires !fired
  | Some _ | None -> ()

and session_deliver t id st msg =
  match msg with
  | Item (Sub _) ->
      (* sessions have no static coverage, so the optimizer never feeds
         them sub-aggregates *)
      invalid_arg "Stream_exec: session window fed sub-aggregates"
  | Watermark w ->
      if w > st.s_wm then begin
        st.s_wm <- w;
        session_advance t id st w;
        forward t id (Watermark w)
      end

(* --- construction --------------------------------------------------- *)

let create ?(metrics = Metrics.create ()) ?(mode = Naive) ?(observe = true)
    ?spill plan =
  (match Validate.check plan with
  | [] -> ()
  | errors ->
      invalid_arg
        (Format.asprintf "Stream_exec.create: invalid plan:@ %a"
           (Format.pp_print_list ~pp_sep:Format.pp_print_space
              Validate.pp_error)
           errors));
  let nodes = Plan.nodes plan in
  let agg = Plan.agg plan in
  let output = Plan.output plan in
  (* The pane path applies when per-slide pre-aggregation is sound and
     useful: a constant-size sub-aggregate exists (not holistic), the
     instance tiles exactly into panes (aligned geometry, s | r), and
     the input is the raw stream (windows fed by another window consume
     irregular sub-aggregate emissions instead). *)
  let panes_apply window =
    Aggregate.kind agg <> Aggregate.Holistic
    && Window.is_aligned window
    && match Plan.window_input plan window with
       | `Stream -> true
       | `Window _ -> false
  in
  (* Why an incremental-mode window ran the per-instance fallback, in
     precedence order (a node can be disqualified for several reasons;
     the first is the one reported). *)
  let fallback_reason window =
    if Aggregate.kind agg = Aggregate.Holistic then Some "holistic-aggregate"
    else
      match Plan.window_input plan window with
      | `Window _ -> Some "window-fed-input"
      | `Stream ->
          if Window.is_aligned window then None else Some "non-aligned-window"
  in
  let states =
    Array.mapi
      (fun id op ->
        match op with
        | Plan.Source | Plan.Multicast _ -> N_forward
        | Plan.Filter { pred; _ } -> N_filter pred
        | Plan.Union _ -> N_union { sink = false }
        | Plan.Win_agg { window; _ } -> (
            match (window : Window.t) with
            | Window.Session { gap } ->
                (* Key-dependent extents: the dedicated gap-tracking
                   fallback operator in both modes.  Incremental mode
                   surfaces it through the fallback metric. *)
                if mode = Incremental then
                  Metrics.record_fallback metrics ~id ~window
                    ~reason:"session-window";
                N_session
                  {
                    s_window = window;
                    s_gap = gap;
                    s_open =
                      Store.create ?pool:spill
                        ~name:(Printf.sprintf "n%d-session" id)
                        session_codec;
                    s_deadlines = Fset.empty;
                    s_pending = Pending.empty;
                    s_wm = 0;
                  }
            | Window.Hop { domain = Window.Count; _ } ->
                (* Ordinal-space instances: the dedicated count operator
                   in both modes (panes pre-aggregate per time slide, so
                   they never apply on the count axis). *)
                if mode = Incremental then
                  Metrics.record_fallback metrics ~id ~window
                    ~reason:"count-window";
                N_cwin
                  {
                    c_window = window;
                    c_keys =
                      Store.create ?pool:spill
                        ~name:(Printf.sprintf "n%d-cwin" id)
                        cwin_codec;
                  }
            | Window.Hop { domain = Window.Time; _ } ->
                if mode = Incremental && panes_apply window then
                  N_pane
                    {
                      p_window = window;
                      slide = Window.slide window;
                      k = Window.k_ratio window;
                      open_pane = Pane.create ?pool:spill agg;
                      cur_pane = 0;
                      queues =
                        Store.create ?pool:spill
                          ~name:(Printf.sprintf "n%d-queues" id)
                          (Bincodec.swag_codec agg);
                      p_wm = 0;
                    }
                else begin
                  if mode = Incremental then
                    (match fallback_reason window with
                    | Some reason ->
                        Metrics.record_fallback metrics ~id ~window ~reason
                    | None -> ());
                  N_win
                    {
                      window;
                      w_keys =
                        Store.create ?pool:spill
                          ~name:(Printf.sprintf "n%d-win" id)
                          win_codec;
                      w_fire = Fset.empty;
                      wm = 0;
                    }
                end))
      nodes
  in
  (match states.(output) with
  | N_union _ -> states.(output) <- N_union { sink = true }
  | N_forward | N_filter _ | N_win _ | N_pane _ | N_cwin _ | N_session _ -> ());
  let obs =
    Array.mapi
      (fun id op ->
        let kind, window =
          match (op, states.(id)) with
          | Plan.Source, _ -> ("source", None)
          | Plan.Multicast _, _ -> ("multicast", None)
          | Plan.Filter _, _ -> ("filter", None)
          | Plan.Union _, _ -> ("union", None)
          | Plan.Win_agg { window; _ }, N_pane _ -> ("win-pane", Some window)
          | Plan.Win_agg { window; _ }, N_cwin _ -> ("win-count", Some window)
          | Plan.Win_agg { window; _ }, N_session _ ->
              ("win-session", Some window)
          | Plan.Win_agg { window; _ }, _ -> ("win-naive", Some window)
        in
        Metrics.node metrics ~id ~kind ?window ())
      nodes
  in
  let sources =
    let acc = ref [] in
    Array.iteri
      (fun id op -> match op with Plan.Source -> acc := id :: !acc | _ -> ())
      nodes;
    Array.of_list (List.rev !acc)
  in
  {
    plan;
    agg;
    mode;
    spill;
    metrics;
    states;
    obs;
    observe;
    sample_mask = (match Metrics.trace metrics with Some _ -> 0 | None -> 15);
    subs = subscribers plan;
    sources;
    source_wm = 0;
    wm_wall = 0;
    rows = Vec.create ();
    scratch = Batch.create ();
    iota = [||];
    closed = false;
  }

(* --- snapshot support ---------------------------------------------- *)

(* The export is a plain public mirror of every mutable cell: the
   pending per-instance states, the pane ring position, the per-key
   sliding queues (exact internal shape, see {!Fw_agg.Swag.export}),
   the watermark, and the rows emitted so far.  Restoring it through
   [import] onto the same plan and mode yields an executor whose
   subsequent behavior is indistinguishable from the original —
   including float rounding, which is why the queues are not rebuilt by
   replaying pushes. *)
type node_export =
  | X_stateless
  | X_win of {
      x_pending : (int * int * string * Combine.state * int) list;
          (* (hi, lo, key, state, items), in Fire_key order *)
      x_wm : int;
    }
  | X_pane of {
      x_cur_pane : int;
      x_p_wm : int;
      x_open_pane : Pane.export;
      x_queues : (string * Swag.export) list;  (* sorted by key *)
    }
  | X_cwin of {
      xc_keys : (string * int * (int * Combine.state * int) list) list;
          (* (key, seen, [(hi, state, items)] ascending), sorted by key *)
    }
  | X_session of {
      xs_open : (string * int * int * Combine.state * int) list;
          (* (key, first, last, state, items), sorted by key *)
      xs_pending : (int * int * string * Combine.state * int) list;
          (* (hi, lo, key, state, items), in Fire_key order *)
      xs_wm : int;
    }

type export = {
  x_mode : mode;
  x_source_wm : int;
  x_rows : Row.t list;  (* in emission order *)
  x_nodes : node_export array;
}

let row_count t = Vec.length t.rows
let row t i = Vec.get t.rows i

let export ?(rows = true) t =
  if t.closed then invalid_arg "Stream_exec.export: executor is closed";
  let node_x st =
    match st with
    | N_forward | N_filter _ | N_union _ -> X_stateless
    | N_win w ->
        (* Folding the store faults every spilled key back in, so the
           export is self-contained — snapshots never reference spill
           files.  [lo = hi - range] for every pending instance, and
           sorting by (hi, key) reproduces the historical ascending
           (hi, lo, key) order exactly. *)
        let range = Window.range w.window in
        X_win
          {
            x_pending =
              List.sort
                (fun (h1, _, k1, _, _) (h2, _, k2, _, _) ->
                  match Int.compare h1 h2 with
                  | 0 -> String.compare k1 k2
                  | c -> c)
                (Store.fold
                   (fun key im acc ->
                     Imap.fold
                       (fun hi (state, items) acc ->
                         (hi, hi - range, key, state, items) :: acc)
                       im acc)
                   w.w_keys []);
            x_wm = w.wm;
          }
    | N_pane ps ->
        X_pane
          {
            x_cur_pane = ps.cur_pane;
            x_p_wm = ps.p_wm;
            x_open_pane = Pane.export ps.open_pane;
            x_queues =
              List.sort
                (fun (a, _) (b, _) -> String.compare a b)
                (Store.fold
                   (fun k q acc -> (k, Swag.export q) :: acc)
                   ps.queues []);
          }
    | N_cwin st ->
        X_cwin
          {
            xc_keys =
              List.sort
                (fun (a, _, _) (b, _, _) -> String.compare a b)
                (Store.fold
                   (fun key kc acc ->
                     ( key,
                       kc.seen,
                       List.map
                         (fun (hi, (state, items)) -> (hi, state, items))
                         (Imap.bindings kc.kpend) )
                     :: acc)
                   st.c_keys []);
          }
    | N_session st ->
        X_session
          {
            xs_open =
              List.sort
                (fun (a, _, _, _, _) (b, _, _, _, _) -> String.compare a b)
                (Store.fold
                   (fun key os acc ->
                     (key, os.s_first, os.s_last, os.s_state, os.s_items)
                     :: acc)
                   st.s_open []);
            xs_pending =
              List.map
                (fun (fk, (state, items)) ->
                  (fk.Fire_key.hi, fk.Fire_key.lo, fk.Fire_key.key, state, items))
                (Pending.bindings st.s_pending);
            xs_wm = st.s_wm;
          }
  in
  {
    x_mode = t.mode;
    x_source_wm = t.source_wm;
    x_rows = (if rows then Vec.to_list t.rows else []);
    x_nodes = Array.map node_x t.states;
  }

let import ?metrics ?observe ?spill plan x =
  let t = create ?metrics ~mode:x.x_mode ?observe ?spill plan in
  if Array.length t.states <> Array.length x.x_nodes then
    invalid_arg
      "Stream_exec.import: node count mismatch (snapshot from a different \
       plan)";
  Array.iteri
    (fun id nx ->
      match (t.states.(id), nx) with
      | (N_forward | N_filter _ | N_union _), X_stateless -> ()
      | N_win st, X_win { x_pending; x_wm } ->
          st.wm <- x_wm;
          List.iter
            (fun (hi, _lo, key, state, items) ->
              st.w_fire <- Fset.add (hi, key) st.w_fire;
              Store.update st.w_keys key (fun prev ->
                  let im =
                    match prev with None -> Imap.empty | Some im -> im
                  in
                  Imap.add hi (state, items) im))
            x_pending
      | N_pane ps, X_pane { x_cur_pane; x_p_wm; x_open_pane; x_queues } ->
          List.iter
            (fun (k, xq) ->
              Store.set ps.queues k (Swag.import t.agg xq))
            x_queues;
          t.states.(id) <-
            N_pane
              {
                ps with
                cur_pane = x_cur_pane;
                p_wm = x_p_wm;
                open_pane = Pane.import ?pool:t.spill t.agg x_open_pane;
              }
      | N_cwin st, X_cwin { xc_keys } ->
          Store.clear st.c_keys;
          List.iter
            (fun (key, seen, pend) ->
              Store.set st.c_keys key
                {
                  seen;
                  kpend =
                    List.fold_left
                      (fun acc (hi, state, items) ->
                        Imap.add hi (state, items) acc)
                      Imap.empty pend;
                })
            xc_keys
      | N_session st, X_session { xs_open; xs_pending; xs_wm } ->
          Store.clear st.s_open;
          st.s_deadlines <- Fset.empty;
          List.iter
            (fun (key, s_first, s_last, s_state, s_items) ->
              Store.set st.s_open key { s_first; s_last; s_state; s_items };
              st.s_deadlines <-
                Fset.add (s_last + st.s_gap, key) st.s_deadlines)
            xs_open;
          st.s_pending <-
            List.fold_left
              (fun acc (hi, lo, key, state, items) ->
                Pending.add { Fire_key.hi; lo; key } (state, items) acc)
              Pending.empty xs_pending;
          st.s_wm <- xs_wm
      | ( ( N_forward | N_filter _ | N_union _ | N_win _ | N_pane _ | N_cwin _
          | N_session _ ),
          _ ) ->
          invalid_arg
            (Printf.sprintf
               "Stream_exec.import: node %d shape mismatch (snapshot from a \
                different plan or mode)"
               id))
    x.x_nodes;
  t.source_wm <- x.x_source_wm;
  List.iter (Vec.push t.rows) x.x_rows;
  t

let root_deliver t msg =
  Array.iter (fun id -> deliver t id msg) t.sources

(* --- batched dispatch ----------------------------------------------- *)

(* Vectorized delivery of raw events: one node visit per batch segment
   instead of one per event.  [sel.(lo .. hi-1)] are column indices
   into [b]; filters narrow the selection, window operators fold the
   whole run inline.  Watermarks still travel through the per-message
   [deliver] above — firing is where rows are born and order matters,
   so that path stays shared between the per-event and batched modes.

   The equivalence argument (why coalescing per-event watermarks to
   segment boundaries is invisible): an event at time [t] only folds
   into instances with [hi > t], which is disjoint from the instances
   a watermark [<= t] fires; firing pops {!Pending} in ascending
   (hi, lo, key) order, so the per-node emission order of a coalesced
   fire equals the concatenation of the per-event fires; and the
   cost-model counters are order-insensitive sums.  Engine state at
   every punctuation boundary is therefore exactly the per-event
   state — which is what makes mid-batch checkpoints sound
   ({!Fw_snap.Checkpoint}).  Per-node activation counts and sampled
   latencies may legitimately differ (fewer, larger activations). *)
let rec bdeliver t id b sel lo hi =
  if hi > lo then begin
    if t.observe then Counter.add t.obs.(id).Metrics.rows_in (hi - lo);
    match t.states.(id) with
    | N_forward -> bforward t id b sel lo hi
    | N_filter pred ->
        let times = Batch.times b
        and keys = Batch.keys b
        and values = Batch.values b in
        let keep = Array.make (hi - lo) 0 in
        let m = ref 0 in
        for i = lo to hi - 1 do
          let j = sel.(i) in
          if
            Fw_plan.Predicate.eval pred ~key:keys.(j) ~value:values.(j)
              ~time:times.(j)
          then begin
            keep.(!m) <- j;
            incr m
          end
        done;
        bforward t id b keep 0 !m
    | N_union _ ->
        (* raw events never become rows at the sink; pass through *)
        bforward t id b sel lo hi
    | N_win st -> bwin_add t st b sel lo hi
    | N_pane ps -> bpane_add t id ps b sel lo hi
    | N_cwin st -> bcwin_add t id st b sel lo hi
    | N_session st -> bsession_add t st b sel lo hi
  end

and bforward t id b sel lo hi =
  if t.observe then Counter.add t.obs.(id).Metrics.rows_out (hi - lo);
  let subs = t.subs.(id) in
  for i = 0 to Array.length subs - 1 do
    bdeliver t subs.(i) b sel lo hi
  done

(* Per-instance fold of a run: the instance loop is inlined (no
   per-event index-list allocation), visiting the same instances in
   the same ascending order as {!instances_containing}. *)
and bwin_add t st b sel lo hi =
  let times = Batch.times b
  and keys = Batch.keys b
  and values = Batch.values b in
  let r = Window.range st.window and s = Window.slide st.window in
  for i = lo to hi - 1 do
    let j = sel.(i) in
    let tm = times.(j) in
    let v = values.(j) in
    let hi_m = tm / s in
    let lo_m = if tm < r then 0 else ((tm - r) / s) + 1 in
    for m = lo_m to hi_m do
      let l = m * s in
      if l <= tm && tm < l + r then
        win_add_instance st m keys.(j) (function
          | None -> Combine.of_value t.agg v
          | Some st' -> Combine.add st' v)
    done
  done

(* Count-window fold of a run: firing happens inside the event loop
   (instances complete on arrival, not at punctuation), so downstream
   consumers see sub-aggregates in exactly the per-event order —
   byte-identity at any batch size is structural, not argued. *)
and bcwin_add t id st b sel lo hi =
  let keys = Batch.keys b
  and values = Batch.values b in
  let r = Window.range st.c_window and s = Window.slide st.c_window in
  for i = lo to hi - 1 do
    let j = sel.(i) in
    cwin_with_key st keys.(j) (fun kc ->
        let n = kc.seen in
        kc.seen <- n + 1;
        let v = values.(j) in
        let hi_m = n / s in
        let lo_m = if n < r then 0 else ((n - r) / s) + 1 in
        for m = lo_m to hi_m do
          let l = m * s in
          if l <= n && n < l + r then
            cwin_fold st kc m (function
              | None -> Combine.of_value t.agg v
              | Some st' -> Combine.add st' v)
        done;
        cwin_fire t id st keys.(j) kc ~upto:kc.seen)
  done

(* Session fold of a run: join/rotate per event (order-dependent but
   watermark-free); emission happens at the segment's trailing
   watermark through the shared per-message path. *)
and bsession_add t st b sel lo hi =
  let times = Batch.times b
  and keys = Batch.keys b
  and values = Batch.values b in
  for i = lo to hi - 1 do
    let j = sel.(i) in
    session_add t st keys.(j) times.(j) values.(j)
  done

(* Pane fold of a run: roll once per pane boundary, then absorb the
   maximal run landing in the open pane with one columnar
   {!Pane.add_run} — the events between two boundaries would each have
   hit [pane_roll] as a no-op in the per-event path. *)
and bpane_add t id ps b sel lo hi =
  let times = Batch.times b
  and keys = Batch.keys b
  and values = Batch.values b in
  let i = ref lo in
  while !i < hi do
    pane_roll t id ps ~upto:times.(sel.(!i));
    let bound = (ps.cur_pane + 1) * ps.slide in
    let j = ref (!i + 1) in
    while !j < hi && times.(sel.(!j)) < bound do
      incr j
    done;
    Pane.add_run ps.open_pane ~keys ~values ~sel ~lo:!i ~hi:!j;
    i := !j
  done

let ensure_iota t n =
  if Array.length t.iota < n then
    t.iota <- Array.init (max n (2 * Array.length t.iota)) (fun i -> i)

(* Broadcast a new source watermark.  [stamp] is the wall clock when
   the punctuation entered the engine — taken lazily, at most once per
   feed_batch call (or pre-filled by the sharding driver, so queue
   wait is visible in the delay): the clock is only read when a
   watermark actually advances, keeping observe-mode clock cost off
   the per-event path.  It baselines the sampled watermark-to-fire
   delay and feeds the progress gauges the meter turns into watermark
   lag. *)
let broadcast_wm t ~stamp wm =
  t.source_wm <- wm;
  if t.observe then begin
    if !stamp = 0 then stamp := Clock.now_ns ();
    t.wm_wall <- !stamp;
    Metrics.record_watermark t.metrics ~wm ~at_ns:t.wm_wall
  end;
  root_deliver t (Watermark wm)

let feed_batch t b =
  if t.closed then invalid_arg "Stream_exec.feed_batch: executor is closed";
  let n = Batch.length b in
  let nm = Batch.mark_count b in
  let times = Batch.times b in
  (* Atomic validation: replay the interleaved slot order against the
     watermark before touching any state, so a late event rejects the
     whole batch with no partial effects. *)
  let running = ref t.source_wm in
  let mj = ref 0 in
  for i = 0 to n - 1 do
    while !mj < nm && fst (Batch.mark b !mj) <= i do
      let _, wm = Batch.mark b !mj in
      if wm > !running then running := wm;
      incr mj
    done;
    if times.(i) < !running then raise (Late_event (Batch.event b i));
    if times.(i) > !running then running := times.(i)
  done;
  if n > 0 then Metrics.record_ingest t.metrics n;
  ensure_iota t n;
  let iota = t.iota in
  (* one lazy wall-clock stamp per batch: every broadcast below shares it *)
  let stamp = ref 0 in
  (* Deliver one segment of events, then broadcast its trailing
     watermark (the last event's time): per-event execution would have
     broadcast after every time increase, but no state distinguishable
     at a segment boundary depends on the intermediate broadcasts. *)
  let seg lo hi =
    if hi > lo then begin
      Array.iter (fun id -> bdeliver t id b iota lo hi) t.sources;
      let tm = times.(hi - 1) in
      if tm > t.source_wm then broadcast_wm t ~stamp tm
    end
  in
  let pos = ref 0 in
  for j = 0 to nm - 1 do
    let at, wm = Batch.mark b j in
    let at = min (max at !pos) n in
    seg !pos at;
    pos := at;
    if wm > t.source_wm then broadcast_wm t ~stamp wm
  done;
  seg !pos n

let feed t e =
  if t.closed then invalid_arg "Stream_exec.feed: executor is closed";
  Batch.reset t.scratch;
  Batch.push t.scratch e;
  feed_batch t t.scratch

let advance ?(at_ns = 0) t time =
  if t.closed then invalid_arg "Stream_exec.advance: executor is closed";
  if time > t.source_wm then broadcast_wm t ~stamp:(ref at_ns) time

let close t ~horizon =
  advance t horizon;
  t.closed <- true;
  Row.sort (Vec.to_list t.rows)

let run ?metrics ?mode ?observe ?spill plan ~horizon events =
  let t = create ?metrics ?mode ?observe ?spill plan in
  List.iter
    (fun e -> if e.Event.time < horizon then feed t e)
    (Event.sort events);
  close t ~horizon
