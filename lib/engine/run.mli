(** High-level execution helpers tying plans, the executor and the
    oracle together. *)

type report = {
  rows : Row.t list;
  metrics : Metrics.t;
}

type saving = {
  window : Fw_window.Window.t;
  baseline_items : int;  (** items the first plan charged the window *)
  rewritten_items : int;  (** items the second plan charged it *)
}

type comparison = {
  baseline : report;  (** the first plan's run *)
  rewritten : report;  (** the second plan's run *)
  savings : saving list;
      (** per-operator delta over the union of both plans' windows,
          sorted; factor windows show up with [baseline_items = 0] *)
}

val saved : saving -> int
(** [baseline_items - rewritten_items]; negative for added work. *)

val execute :
  ?metrics:Metrics.t ->
  ?mode:Stream_exec.mode ->
  ?trace:Fw_obs.Trace.t ->
  ?spill:Fw_spill.Pool.t ->
  Fw_plan.Plan.t ->
  horizon:int ->
  Event.t list ->
  report
(** Stream-execute a plan; [metrics] supplies the registry to record
    into (fresh by default) — pass one whose registry is already being
    served ({!Fw_obs.Scrape}) to watch the run live.  [trace] attaches
    a span trace before the executor is built so every activation is
    recorded.  [spill] runs the executor's keyed state under a memory
    budget (see {!Stream_exec.create}); the pool stays caller-owned. *)

val verify_against_naive :
  Fw_plan.Plan.t -> horizon:int -> Event.t list -> (unit, string) result
(** Run the plan and check its rows against the batch oracle computed
    over the plan's exposed windows — the end-to-end correctness check
    for rewritten plans. *)

val per_window_savings : report -> report -> saving list
(** The per-operator delta between two reports, sorted by window. *)

val pp_savings : Format.formatter -> saving list -> unit

val compare_plans :
  Fw_plan.Plan.t ->
  Fw_plan.Plan.t ->
  horizon:int ->
  Event.t list ->
  (comparison, string) result
(** Execute two equivalent plans and fail if their row sets differ; on
    success return both reports plus the per-operator savings (where
    the computation went, window by window — not just the totals). *)
