(** Synthetic event streams (Section 5.2 data generation).

    The cost model assumes a steady rate of [η] events per tick;
    {!steady} produces exactly that (the stream the [validate] bench
    uses to confront measured counters with the model).  {!varied}
    draws a per-tick rate uniformly from [\[1, eta_max\]], matching the
    paper's "various input event rate" data generator.

    Keys are drawn {!Uniform}ly by default; {!Zipf} skews the draw so
    the first keys of the pool dominate — the workload that exercises
    the sharded runner's imbalance gauge and backpressure counters
    ({!Fw_shard.Runner}) with something other than evenly spread
    keys. *)

type key_dist =
  | Uniform
  | Zipf of float
      (** [Zipf s] weights the i-th key (1-based) by [1/i^s];
          [Zipf 0.] is uniform, [s ≈ 1] the classic web-traffic skew. *)

type config = {
  keys : string list;  (** grouping keys, e.g. device ids *)
  value_min : float;
  value_max : float;
  key_dist : key_dist;
}

val default_config : config
(** Four device keys, values in [\[0, 100)], uniform keys. *)

val key_pool : int -> string list
(** [key_pool n] is [n] synthetic device keys ([device-001] ...), for
    key-heavy workloads (sharding benches want far more keys than the
    default four). *)

val steady :
  Fw_util.Prng.t -> config -> eta:int -> horizon:int -> Fw_engine.Event.t list
(** [eta] events at every tick in [\[0, horizon)], keys drawn from
    [config.key_dist], time-ordered. *)

val varied :
  Fw_util.Prng.t -> config -> eta_max:int -> horizon:int -> Fw_engine.Event.t list
(** Per-tick rate uniform in [\[1, eta_max\]]. *)

val spiky :
  Fw_util.Prng.t ->
  config ->
  eta:int ->
  spike_every:int ->
  spike_factor:int ->
  horizon:int ->
  Fw_engine.Event.t list
(** Steady rate with periodic bursts — failure-injection style load for
    engine tests. *)
