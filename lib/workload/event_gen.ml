module Prng = Fw_util.Prng
module Event = Fw_engine.Event

type key_dist = Uniform | Zipf of float

type config = {
  keys : string list;
  value_min : float;
  value_max : float;
  key_dist : key_dist;
}

let default_config =
  {
    keys = [ "device-1"; "device-2"; "device-3"; "device-4" ];
    value_min = 0.0;
    value_max = 100.0;
    key_dist = Uniform;
  }

let key_pool n =
  if n < 1 then invalid_arg "Event_gen.key_pool: need at least one key";
  List.init n (fun i -> Printf.sprintf "device-%03d" (i + 1))

let check config =
  if config.keys = [] then invalid_arg "Event_gen: no keys";
  if config.value_max < config.value_min then
    invalid_arg "Event_gen: empty value range";
  match config.key_dist with
  | Uniform -> ()
  | Zipf s ->
      if s < 0.0 || not (Float.is_finite s) then
        invalid_arg "Event_gen: Zipf exponent must be finite and >= 0"

(* Key sampler, built once per stream: uniform draws straight from the
   list; Zipf(s) weights the i-th key (1-based) by 1/i^s and inverts
   the cumulative distribution with a linear scan — key pools are small
   enough that a binary search would not pay for itself.  Zipf 0 is
   uniform by construction. *)
let key_sampler config =
  match config.key_dist with
  | Uniform -> fun prng -> Prng.choose prng config.keys
  | Zipf s ->
      let keys = Array.of_list config.keys in
      let n = Array.length keys in
      let cdf = Array.make n 0.0 in
      let total = ref 0.0 in
      for i = 0 to n - 1 do
        total := !total +. (1.0 /. (float_of_int (i + 1) ** s));
        cdf.(i) <- !total
      done;
      fun prng ->
        let u = Prng.float prng !total in
        let rec scan i =
          if i >= n - 1 || u < cdf.(i) then keys.(i) else scan (i + 1)
        in
        scan 0

let event_at sample_key prng config ~time =
  let key = sample_key prng in
  let value =
    config.value_min
    +. Prng.float prng (config.value_max -. config.value_min)
  in
  Event.make ~time ~key ~value

let with_rate prng config ~rate_at ~horizon =
  check config;
  if horizon < 0 then invalid_arg "Event_gen: negative horizon";
  let sample_key = key_sampler config in
  List.concat
    (List.init horizon (fun time ->
         List.init (rate_at time) (fun _ ->
             event_at sample_key prng config ~time)))

let steady prng config ~eta ~horizon =
  if eta < 1 then invalid_arg "Event_gen.steady: eta must be >= 1";
  with_rate prng config ~rate_at:(fun _ -> eta) ~horizon

let varied prng config ~eta_max ~horizon =
  if eta_max < 1 then invalid_arg "Event_gen.varied: eta_max must be >= 1";
  with_rate prng config ~rate_at:(fun _ -> Prng.int_in prng 1 eta_max) ~horizon

let spiky prng config ~eta ~spike_every ~spike_factor ~horizon =
  if eta < 1 || spike_every < 1 || spike_factor < 1 then
    invalid_arg "Event_gen.spiky: parameters must be >= 1";
  with_rate prng config
    ~rate_at:(fun time ->
      if time mod spike_every = 0 then eta * spike_factor else eta)
    ~horizon
