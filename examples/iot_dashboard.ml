(* IoT dashboard: the paper's motivating scenario end-to-end.

     dune exec examples/iot_dashboard.exe

   A fleet of devices reports temperatures; three dashboards watch the
   same stream at different granularities (near-real-time, hourly
   trend, daily trend).  One declarative query serves all three; the
   optimizer shares the computation between the windows, and we measure
   the saving on a realistic event stream. *)

module Optimizer = Factor_windows.Optimizer
module Metrics = Fw_engine.Metrics
module Run = Fw_engine.Run
module Report = Factor_windows.Report

let query =
  {|SELECT DeviceID, System.Window().Id AS WindowId, MAX(Temperature) AS PeakTemp
FROM Telemetry TIMESTAMP BY EntryTime
GROUP BY DeviceID, WINDOWS(
    WINDOW('5 min',  TUMBLINGWINDOW(minute, 5)),
    WINDOW('15 min', TUMBLINGWINDOW(minute, 15)),
    WINDOW('1 hour', TUMBLINGWINDOW(minute, 60)),
    WINDOW('2 hour', TUMBLINGWINDOW(minute, 120)))|}

let () =
  print_endline "=== dashboard query ===";
  print_endline query;
  match Optimizer.of_query ~eta:10 query with
  | Error e ->
      Printf.eprintf "compilation failed: %s\n" e;
      exit 1
  | Ok t ->
      print_endline "\n=== optimizer decision ===";
      print_string (Optimizer.explain t);

      (* Two hours of telemetry from 8 devices, ~10 events per second. *)
      let horizon = 7200 in
      let prng = Fw_util.Prng.create 2024 in
      let config =
        {
          Fw_workload.Event_gen.keys =
            List.init 8 (Printf.sprintf "device-%02d");
          value_min = 15.0;
          value_max = 40.0;
          key_dist = Fw_workload.Event_gen.Uniform;
        }
      in
      let events =
        Fw_workload.Event_gen.varied prng config ~eta_max:10 ~horizon
      in
      Printf.printf "\nreplaying %d events over %d ticks...\n"
        (List.length events) horizon;

      (match
         Run.compare_plans (Optimizer.naive_plan t) (Optimizer.optimized_plan t)
           ~horizon events
       with
      | Error e ->
          Printf.eprintf "plans disagree: %s\n" e;
          exit 1
      | Ok cmp ->
          let naive_report = cmp.Run.baseline
          and opt_report = cmp.Run.rewritten in
          let table =
            Report.table
              ~header:[ "window"; "naive items"; "rewritten items"; "saving" ]
              (List.map
                 (fun (s : Run.saving) ->
                   [
                     Fw_window.Window.to_string s.Run.window;
                     string_of_int s.Run.baseline_items;
                     string_of_int s.Run.rewritten_items;
                     Report.ratio s.Run.baseline_items
                       (max 1 s.Run.rewritten_items);
                   ])
                 cmp.Run.savings)
          in
          print_endline "\n=== measured work per window ===";
          print_endline table;
          Printf.printf
            "\ntotal: naive %d items, rewritten %d items (%s); %d identical \
             dashboard rows.\n"
            (Metrics.total_processed naive_report.Run.metrics)
            (Metrics.total_processed opt_report.Run.metrics)
            (Report.ratio
               (Metrics.total_processed naive_report.Run.metrics)
               (Metrics.total_processed opt_report.Run.metrics))
            (List.length opt_report.Run.rows))
