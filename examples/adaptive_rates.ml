(* Adaptive re-optimization demo (the paper's Section-6 future work).

     dune exec examples/adaptive_rates.exe

   The stream's rate ramps 1 -> 8 -> 2 events/tick.  The controller
   tracks the observed rate per common period, re-optimizes when it
   leaves the hysteresis band, and hands execution over to the new plan
   at a period boundary with a drain overlap — output rows stay exactly
   equal to the reference computation throughout. *)

open Fw_window
module Adaptive = Factor_windows.Adaptive
module Oracle = Fw_engine.Oracle
module Row = Fw_engine.Row

(* A window set whose optimal structure depends on the rate. *)
let windows =
  [
    Window.make ~range:12 ~slide:6;
    Window.make ~range:12 ~slide:3;
    Window.make ~range:20 ~slide:10;
    Window.make ~range:32 ~slide:8;
  ]

let period = 480
let horizon = 5 * period

let rate_at t =
  if t < period then 1 else if t < 3 * period then 8 else 2

let events =
  List.concat
    (List.init horizon (fun t ->
         List.init (rate_at t) (fun i ->
             Fw_engine.Event.make ~time:t ~key:"sensor"
               ~value:(float_of_int ((t + (11 * i)) mod 97)))))

let () =
  Printf.printf "windows: %s (common period %d)\n"
    (String.concat " " (List.map Window.to_string windows))
    period;
  Printf.printf "rate profile: 1/tick, then 8/tick, then 2/tick (%d events)\n"
    (List.length events);

  let rows, switches =
    Adaptive.run ~initial_eta:1 Fw_agg.Aggregate.Min windows ~horizon events
  in
  print_endline "\nplan switches:";
  List.iter
    (fun s ->
      Printf.printf
        "  t=%5d: eta %d -> %d; keeping the old plan would cost %d, the new \
         one costs %d\n"
        s.Adaptive.at s.Adaptive.eta_before s.Adaptive.eta_after
        s.Adaptive.cost_before s.Adaptive.cost_after)
    switches;
  if switches = [] then print_endline "  (none)";

  let oracle = Oracle.run Fw_agg.Aggregate.Min windows ~horizon events in
  Printf.printf "\n%d result rows; equal to the reference computation: %b\n"
    (List.length rows) (Row.equal_sets rows oracle)
